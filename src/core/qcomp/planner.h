// QComp physical planner (Section 5.2).
//
// Lowers a logical tree into a physical plan, making RAPID's physical
// decisions:
//   * predicate ordering (most selective first) and qualifying-row
//     representation (RID list below 1/32 selectivity),
//   * task formation / tile-size selection under the DMEM budget,
//   * partition-scheme optimization for joins and high-NDV group-bys,
//   * group-by strategy (low-NDV on-the-fly + merge vs partitioned),
//   * build/probe side selection by estimated cardinality,
//   * skew-resilience parameters (DMEM capacities, estimates).

#ifndef RAPID_CORE_QCOMP_PLANNER_H_
#define RAPID_CORE_QCOMP_PLANNER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/qcomp/logical_plan.h"
#include "core/qcomp/steps.h"
#include "dpu/config.h"
#include "dpu/cost_model.h"
#include "storage/table.h"

namespace rapid::core {

using Catalog = std::unordered_map<std::string, storage::Table>;

struct PlannerOptions {
  // Group count below which the on-the-fly + merge strategy is used.
  size_t low_ndv_threshold = 8192;
  // Join kernel tile size (Figures 11/12 parameter).
  size_t join_tile_rows = 256;
  // Override the DMEM build capacity per join kernel (0 = derive from
  // the DMEM budget); lowering it forces the small-skew overflow path.
  size_t join_dmem_capacity_rows = 0;
  // Enable heavy-hitter (flow-join) detection at this per-key count
  // (0 = disabled).
  size_t heavy_hitter_threshold = 0;
  // Large-skew repartition factor.
  double large_skew_factor = 4.0;
  // Force the join partition fan-out (0 = optimizer decides).
  int force_join_fanout = 0;
  // High-NDV group-by: partitions above this row count re-partition at
  // runtime (0 = derive from the DMEM budget).
  size_t groupby_max_partition_rows = 0;
  // Tile-pipeline fusion: fuse maximal scan/filter/project/probe runs
  // into single-round PipelineSteps (skipped automatically when skew
  // knobs above force the partitioned join paths).
  bool enable_fusion = true;
  // Broadcast-probe gate: joins whose estimated build side exceeds
  // this stay partitioned. Default keeps the per-core table within the
  // 32 KiB DMEM scratchpad.
  size_t fusion_max_build_rows = 8192;
};

// Estimated selectivity of a predicate from column statistics.
double EstimateSelectivity(const storage::ColumnStats& stats,
                           const Predicate& pred);

class Planner {
 public:
  Planner(const dpu::DpuConfig& config, const dpu::CostParams& params,
          PlannerOptions options = PlannerOptions{})
      : config_(config), params_(params), options_(options) {}

  Result<PhysicalPlan> Plan(const LogicalPtr& root, const Catalog& catalog);

 private:
  struct Lowered {
    int step = -1;
    double est_rows = 0;
    // Base table the subtree scans (empty if not a plain scan chain);
    // lets group-by/join planning reach NDV statistics.
    std::string base_table;
    // Output column names of the step, in position order.
    std::vector<std::string> columns;
  };

  // Lowers `node` (whose position in the logical tree is `path`: ""
  // at the root, then '0' per input/left edge and '1' per right edge)
  // and records the step that materializes the subtree's rows in
  // plan->subtree_steps, so a failed execution can hand completed
  // subtree results back to the host fallback.
  Result<Lowered> Lower(const LogicalNode& node, const Catalog& catalog,
                        PhysicalPlan* plan, const std::string& path);

  Result<Lowered> LowerImpl(const LogicalNode& node, const Catalog& catalog,
                            PhysicalPlan* plan, const std::string& path);

  Result<Lowered> LowerScan(const LogicalNode& node, const Catalog& catalog,
                            PhysicalPlan* plan,
                            std::vector<std::pair<std::string, ExprPtr>>
                                projections);

  dpu::DpuConfig config_;
  dpu::CostParams params_;
  PlannerOptions options_;
};

}  // namespace rapid::core

#endif  // RAPID_CORE_QCOMP_PLANNER_H_
