#include "core/qcomp/cost_model.h"

#include <algorithm>
#include <cmath>

namespace rapid::core {

double CostEstimator::ScanSeconds(size_t rows, size_t row_bytes,
                                  size_t num_predicates, double selectivity,
                                  double compression_ratio) const {
  const double r = static_cast<double>(rows);
  // First predicate scans everything; later ones scan survivors. The
  // filter primitive is SIMD dispatched, so the per-row rate divides
  // by the family's throughput multiplier.
  const double filter_rate =
      params_.filter_cycles_per_row / params_.simd.filter;
  double compute = filter_rate * r;
  double surviving = r * selectivity;
  for (size_t p = 1; p < num_predicates; ++p) {
    compute += filter_rate * surviving;
  }
  const double ratio = std::max(1.0, compression_ratio);
  if (ratio > 1.0) {
    // Encoded tiles expand in DMEM before the filters run.
    compute += params_.rle_decode_cycles_per_row / params_.simd.rle * r;
  }
  const double transfer = r * static_cast<double>(row_bytes) / ratio /
                          params_.dram_bytes_per_cycle;
  return PerCore(std::max(compute, transfer));
}

double CostEstimator::JoinSeconds(size_t build_rows, size_t probe_rows,
                                  size_t row_bytes, size_t rounds) const {
  const double b = static_cast<double>(build_rows);
  const double p = static_cast<double>(probe_rows);
  const double partition_bytes =
      (b + p) * static_cast<double>(row_bytes) * static_cast<double>(rounds);
  const double partition = partition_bytes / params_.partition_bytes_per_cycle;
  const double build = params_.join_build_cycles_per_row * b;
  const double probe = params_.join_probe_cycles_per_row * p;
  return PerCore(partition + build + probe);
}

double CostEstimator::JoinFilterSeconds(size_t build_rows, size_t probe_rows,
                                        size_t row_bytes, size_t rounds,
                                        double selectivity, double fpr) const {
  const double b = static_cast<double>(build_rows);
  const double p = static_cast<double>(probe_rows);
  const double pass = std::min(1.0, std::max(0.0, selectivity) + fpr);
  const double pruned = p * (1.0 - pass);
  // Cost: every core builds its private filter from the DRAM-resident
  // key column (broadcast-join model), then one blocked-Bloom probe
  // per probe row inside the scan's fused tile loop.
  const double bloom_rate =
      params_.bloom_probe_cycles_per_row / params_.simd.bloom;
  const double cost_cycles =
      params_.bloom_insert_cycles_per_row / params_.simd.bloom * b *
          static_cast<double>(config_.num_cores) +
      bloom_rate * p;
  // Saving: pruned rows skip the probe-side partition rounds (DMS
  // round trips in the unfused plan) and the probe kernel itself.
  const double partition_saved =
      pruned * static_cast<double>(row_bytes) * static_cast<double>(rounds) /
      params_.partition_bytes_per_cycle;
  const double probe_saved = params_.join_probe_cycles_per_row * pruned;
  return PerCore(partition_saved + probe_saved - cost_cycles);
}

double CostEstimator::GroupBySeconds(size_t rows, size_t groups,
                                     size_t num_aggs, bool low_ndv) const {
  const double r = static_cast<double>(rows);
  // Aggregate updates are SIMD dispatched; the hash-table bucket walk
  // is data-dependent pointer chasing and stays scalar.
  double cycles = (params_.groupby_cycles_per_row +
                   params_.agg_cycles_per_row / params_.simd.agg *
                       static_cast<double>(num_aggs)) *
                  r;
  if (low_ndv) {
    // Merge of 32 per-core tables of `groups` rows each, on one core.
    cycles += params_.groupby_cycles_per_row * static_cast<double>(groups) *
              static_cast<double>(config_.num_cores);
  }
  return PerCore(cycles);
}

double CostEstimator::SortSeconds(size_t rows, size_t key_bytes) const {
  const double passes = static_cast<double>(key_bytes);  // one pass per byte
  return PerCore(params_.sort_cycles_per_row_per_pass *
                 static_cast<double>(rows) * passes);
}

}  // namespace rapid::core
