#include "core/qcomp/partition_scheme.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dpu/work_queue.h"

namespace rapid::core {

namespace {

int NextPow2Int(size_t n) {
  int p = 1;
  while (static_cast<size_t>(p) < n) p <<= 1;
  return p;
}

// Enumerates all factorizations of `remaining` (a power of two) into
// up to `max_rounds` power-of-two factors bounded by `max_fanout`,
// in non-increasing factor order to avoid duplicate permutations
// (cost is order-insensitive in this model; symmetric preference
// breaks ties).
void EnumerateFactorizations(int remaining, int max_fanout, int max_rounds,
                             std::vector<int>* current,
                             std::vector<std::vector<int>>* out) {
  if (remaining == 1) {
    if (!current->empty()) out->push_back(*current);
    return;
  }
  if (max_rounds == 0) return;
  const int cap = current->empty()
                      ? std::min(max_fanout, remaining)
                      : std::min({max_fanout, remaining, current->back()});
  for (int f = cap; f >= 2; f /= 2) {
    if (remaining % f != 0) continue;
    current->push_back(f);
    EnumerateFactorizations(remaining / f, max_fanout, max_rounds - 1, current,
                            out);
    current->pop_back();
  }
}

// Symmetry score: lower is more symmetric (heuristic d).
double SymmetrySpread(const std::vector<int>& factors) {
  int lo = factors.front();
  int hi = factors.front();
  for (int f : factors) {
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  return std::log2(static_cast<double>(hi)) -
         std::log2(static_cast<double>(lo));
}

}  // namespace

int RequiredPartitions(const PartitionPlanInput& in) {
  const size_t total_bytes = in.total_rows * in.row_bytes;
  const size_t by_size =
      (total_bytes + in.dmem_budget_bytes - 1) / in.dmem_budget_bytes;
  const size_t target =
      std::max<size_t>(by_size, static_cast<size_t>(in.min_partitions));
  return NextPow2Int(std::max<size_t>(1, target));
}

double SchemeCycles(const PartitionScheme& scheme,
                    const PartitionPlanInput& in,
                    const dpu::CostParams& params) {
  // Every round scans all rows once. Compute and DMS streams overlap
  // within a round (double buffering), so a round costs
  // max(compute, transfer); rounds serialize.
  double total = 0;
  const double rows = static_cast<double>(in.total_rows);
  const double tiles = std::max(1.0, rows / static_cast<double>(in.tile_rows));
  for (const PartitionRound& round : scheme.rounds) {
    const int sw_fanout = round.fanout / round.hw_fanout;
    double compute = 0;
    if (sw_fanout > 1) {
      compute = tiles * dpu::SwPartitionTileCycles(
                            params, in.tile_rows,
                            static_cast<int>(in.num_columns), sw_fanout);
    } else {
      compute = rows;  // buffer-drain pass for a pure hardware round
    }
    double transfer = dpu::HwPartitionCycles(
        params, dpu::HwPartitionStrategy::kHash, 1, in.total_rows,
        in.total_rows * in.row_bytes);
    // Writing partitions back to DRAM.
    transfer += static_cast<double>(in.total_rows * in.row_bytes) /
                params.partition_bytes_per_cycle;
    // Balanced-makespan spread over the cores: sum/cores plus the
    // remainder the largest morsel adds under work stealing.
    const double round_cycles = std::max(compute, transfer);
    total += dpu::BalancedMakespanCycles(
        round_cycles, round_cycles * in.largest_morsel_fraction, in.num_cores);
  }
  return total;
}

Result<SchemeChoice> OptimizePartitionScheme(const PartitionPlanInput& in,
                                             const dpu::CostParams& params) {
  const int target = RequiredPartitions(in);
  if (target <= 1) {
    return Status::InvalidArgument("partitioning target must exceed 1");
  }

  std::vector<std::vector<int>> factorizations;
  std::vector<int> current;
  EnumerateFactorizations(target, in.max_round_fanout, /*max_rounds=*/4,
                          &current, &factorizations);
  if (factorizations.empty()) {
    return Status::CapacityExceeded(
        "no factorization of the partition target within round limits");
  }

  // Build feasible schemes (per-round software fan-out limits may
  // disqualify a factorization).
  struct Candidate {
    PartitionScheme scheme;
    double spread;
  };
  std::vector<Candidate> candidates;
  for (const std::vector<int>& factors : factorizations) {
    PartitionScheme scheme;
    bool feasible = true;
    for (size_t r = 0; r < factors.size(); ++r) {
      PartitionRound round;
      round.fanout = factors[r];
      // The first round can use the 32-way hardware engine; software
      // fan-out on top is bounded by max_sw_fanout.
      if (r == 0) {
        round.hw_fanout = std::min(32, factors[r]);
        if (factors[r] / round.hw_fanout > in.max_sw_fanout) {
          feasible = false;
          break;
        }
      } else {
        round.hw_fanout = 1;
        if (factors[r] > in.max_sw_fanout) {
          feasible = false;
          break;
        }
      }
      scheme.rounds.push_back(round);
    }
    if (!feasible) continue;
    candidates.push_back(Candidate{scheme, SymmetrySpread(factors)});
  }

  // Heuristic (c): rounds dominate — every round rescans the data, so
  // candidates with more than the minimal feasible round count are
  // pruned before costing.
  size_t min_rounds = SIZE_MAX;
  for (const Candidate& c : candidates) {
    min_rounds = std::min(min_rounds, c.scheme.NumRounds());
  }

  SchemeChoice best;
  bool first = true;
  double best_spread = 0;
  for (const Candidate& candidate : candidates) {
    if (candidate.scheme.NumRounds() != min_rounds) continue;
    const double cycles = SchemeCycles(candidate.scheme, in, params);
    const double spread = candidate.spread;
    // Cheapest wins; near-ties (<1%) go to the more symmetric scheme.
    const bool better =
        first || cycles < best.cycles * 0.99 ||
        (cycles < best.cycles * 1.01 && spread < best_spread);
    if (better) {
      best.scheme = candidate.scheme;
      best.cycles = cycles;
      best.target_fanout = target;
      best_spread = spread;
      first = false;
    }
  }
  if (first) {
    return Status::CapacityExceeded("no feasible partition scheme");
  }
  return best;
}

}  // namespace rapid::core
