#include "core/qcomp/planner.h"

#include <algorithm>
#include <cmath>

#include "common/trace.h"
#include "core/qcomp/cost_model.h"
#include "core/qcomp/partition_scheme.h"
#include "core/qcomp/pipeline_fusion.h"
#include "core/qcomp/task_formation.h"
#include "primitives/bloom.h"
#include "storage/encoding_stack.h"

namespace rapid::core {

namespace {

int AddStep(PhysicalPlan* plan, std::unique_ptr<PlanStep> step) {
  const int id = step->id();
  plan->steps.push_back(std::move(step));
  return id;
}

int NextId(const PhysicalPlan& plan) {
  return static_cast<int>(plan.steps.size());
}

// Largest chunk's share of a base table's rows (0 when the table is
// unknown or derived): seeds the balanced-makespan cost of partition
// rounds, where the biggest chunk is the biggest morsel.
double LargestChunkFraction(const Catalog& catalog,
                            const std::string& base_table) {
  if (base_table.empty()) return 0.0;
  const auto it = catalog.find(base_table);
  if (it == catalog.end()) return 0.0;
  const storage::Table& t = it->second;
  size_t largest = 0;
  size_t total = 0;
  for (size_t p = 0; p < t.num_partitions(); ++p) {
    const storage::Partition& part = t.partition(p);
    for (size_t c = 0; c < part.num_chunks(); ++c) {
      const size_t rows = part.chunk(c).num_rows();
      largest = std::max(largest, rows);
      total += rows;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(largest) / static_cast<double>(total);
}

}  // namespace

double EstimateSelectivity(const storage::ColumnStats& stats,
                           const Predicate& pred) {
  const double range =
      static_cast<double>(stats.max) - static_cast<double>(stats.min) + 1.0;
  const double ndv = std::max<double>(1.0, static_cast<double>(stats.ndv));
  switch (pred.kind) {
    case Predicate::Kind::kCmpConst: {
      const double v = static_cast<double>(pred.value);
      const double lo = static_cast<double>(stats.min);
      const double hi = static_cast<double>(stats.max);
      switch (pred.op) {
        case primitives::CmpOp::kEq:
          return std::min(1.0, 1.0 / ndv);
        case primitives::CmpOp::kNe:
          return 1.0 - std::min(1.0, 1.0 / ndv);
        case primitives::CmpOp::kLt:
        case primitives::CmpOp::kLe:
          if (v <= lo) return 0.0;
          if (v >= hi) return 1.0;
          return (v - lo) / range;
        case primitives::CmpOp::kGt:
        case primitives::CmpOp::kGe:
          if (v >= hi) return 0.0;
          if (v <= lo) return 1.0;
          return (hi - v) / range;
      }
      return 0.5;
    }
    case Predicate::Kind::kBetween: {
      const double lo = std::max(static_cast<double>(pred.value),
                                 static_cast<double>(stats.min));
      const double hi = std::min(static_cast<double>(pred.value2),
                                 static_cast<double>(stats.max));
      if (hi < lo) return 0.0;
      return std::min(1.0, (hi - lo + 1.0) / range);
    }
    case Predicate::Kind::kInSet:
      return std::min(1.0,
                      static_cast<double>(pred.in_set.CountOnes()) / ndv);
    case Predicate::Kind::kCmpCol:
      return pred.op == primitives::CmpOp::kEq ? 1.0 / ndv : 0.3;
    case Predicate::Kind::kBloom:
      return pred.selectivity;
  }
  return 0.5;
}

Result<Planner::Lowered> Planner::LowerScan(
    const LogicalNode& node, const Catalog& catalog, PhysicalPlan* plan,
    std::vector<std::pair<std::string, ExprPtr>> projections) {
  auto it = catalog.find(node.table);
  if (it == catalog.end()) {
    return Status::NotFound("table '" + node.table + "' not in catalog");
  }
  const storage::Table& table = it->second;

  // Code-space rewrite: a dictionary membership set whose qualifying
  // codes form one contiguous range becomes a native range (or
  // equality) predicate on the code column. The rewritten predicate is
  // exactly equivalent to the bitmap probe but runs as a width-typed
  // comparison kernel — and, under encoded scans, short-circuits at
  // run level — so string columns never decode on the scan path.
  std::vector<Predicate> preds = node.predicates;
  for (Predicate& p : preds) {
    if (p.kind != Predicate::Kind::kInSet) continue;
    auto col = table.schema().IndexOf(p.column);
    if (!col.ok() || table.schema().field(col.value()).type !=
                         storage::DataType::kDictCode) {
      continue;
    }
    int64_t lo = -1;
    int64_t hi = -1;
    bool contiguous = true;
    for (size_t i = 0; i < p.in_set.size() && contiguous; ++i) {
      if (!p.in_set.Test(i)) continue;
      if (lo < 0) {
        lo = static_cast<int64_t>(i);
        hi = lo;
      } else if (static_cast<int64_t>(i) == hi + 1) {
        hi = static_cast<int64_t>(i);
      } else {
        contiguous = false;
      }
    }
    if (!contiguous || lo < 0) continue;
    p = lo == hi ? Predicate::CmpConst(p.column, primitives::CmpOp::kEq, lo,
                                       p.selectivity)
                 : Predicate::Between(p.column, lo, hi, p.selectivity);
  }

  // Estimate and order predicates most-selective-first.
  double combined = 1.0;
  for (Predicate& p : preds) {
    auto col = table.schema().IndexOf(p.column);
    if (col.ok()) {
      p.selectivity = EstimateSelectivity(table.stats(col.value()), p);
    }
    combined *= p.selectivity;
  }
  std::stable_sort(preds.begin(), preds.end(),
                   [](const Predicate& a, const Predicate& b) {
                     return a.selectivity < b.selectivity;
                   });
  const bool use_rid = combined < 1.0 / 32.0;

  // Base columns: everything the predicates and projections touch.
  std::vector<std::string> base_cols;
  auto add_col = [&base_cols](const std::string& name) {
    if (std::find(base_cols.begin(), base_cols.end(), name) ==
        base_cols.end()) {
      base_cols.push_back(name);
    }
  };
  for (const Predicate& p : preds) {
    add_col(p.column);
    if (p.kind == Predicate::Kind::kCmpCol) add_col(p.column2);
  }
  for (const auto& [name, expr] : projections) {
    std::vector<std::string> refs;
    expr->CollectColumns(&refs);
    for (const auto& r : refs) add_col(r);
  }
  if (base_cols.empty()) {
    // Degenerate COUNT(*)-style scan still needs one column to drive.
    add_col(table.schema().field(0).name);
  }

  // Task formation: accessor + filter + project share DMEM; pick the
  // largest tile the 32 KiB budget allows. Under encoded scans,
  // compressed base columns add their double-buffered run staging
  // (values + lengths, ~2 x width / ratio bytes per row) to the
  // accessor's DMEM footprint and an RLE-expansion term to its
  // per-row compute.
  const bool encoded = storage::EncodedScanActive() ==
                       storage::EncodedScanMode::kAuto;
  size_t in_width = 0;
  size_t staging_width = 0;
  double decode_rate = 0.0;
  for (const std::string& c : base_cols) {
    RAPID_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(c));
    const size_t w = storage::WidthOf(table.schema().field(idx).type);
    in_width += w;
    const double ratio = table.stats(idx).compression_ratio;
    if (encoded && ratio > 1.05) {
      staging_width += static_cast<size_t>(
          std::ceil(2.0 * static_cast<double>(w) / ratio));
      decode_rate +=
          params_.rle_decode_cycles_per_row / params_.simd.rle;
    }
  }
  std::vector<OpProfile> profiles;
  profiles.push_back(OpProfile{"accessor", 64, 2 * in_width + staging_width,
                               1.0, in_width, decode_rate});
  profiles.push_back(OpProfile{
      "filter", 64, 8 * base_cols.size() + 8 /*selection*/, combined,
      8 * base_cols.size(),
      params_.filter_cycles_per_row / params_.simd.filter *
          static_cast<double>(std::max<size_t>(1, preds.size()))});
  profiles.push_back(OpProfile{"project", 64, 8 * projections.size(), 1.0,
                               8 * projections.size(),
                               params_.arith_cycles_per_row /
                                   params_.simd.arith});
  RAPID_ASSIGN_OR_RETURN(size_t tile_rows,
                         MaxTileRows(profiles, 0, profiles.size() - 1,
                                     config_.dmem_bytes));

  std::vector<std::string> out_names;
  for (const auto& [name, expr] : projections) out_names.push_back(name);
  const int id = NextId(*plan);
  AddStep(plan, std::make_unique<ScanStep>(id, node.table, base_cols, preds,
                                           std::move(projections), tile_rows,
                                           use_rid));
  Lowered out;
  out.step = id;
  out.est_rows = static_cast<double>(table.num_rows()) * combined;
  out.base_table = node.table;
  out.columns = std::move(out_names);
  return out;
}

Result<Planner::Lowered> Planner::Lower(const LogicalNode& node,
                                        const Catalog& catalog,
                                        PhysicalPlan* plan,
                                        const std::string& path) {
  RAPID_ASSIGN_OR_RETURN(Lowered out, LowerImpl(node, catalog, plan, path));
  // Record which step materializes this logical subtree's full result
  // (fused cases recurse at the same path; the inner recursion already
  // recorded the same step, so skip duplicates).
  bool recorded = false;
  for (const auto& [existing, step] : plan->subtree_steps) {
    if (existing == path) {
      recorded = true;
      break;
    }
  }
  if (!recorded && out.step >= 0) {
    plan->subtree_steps.emplace_back(path, out.step);
  }
  return out;
}

Result<Planner::Lowered> Planner::LowerImpl(const LogicalNode& node,
                                            const Catalog& catalog,
                                            PhysicalPlan* plan,
                                            const std::string& path) {
  switch (node.kind) {
    case LogicalNode::Kind::kScan: {
      // Identity projections for the scanned columns.
      std::vector<std::pair<std::string, ExprPtr>> projections;
      for (const std::string& c : node.columns) {
        projections.emplace_back(c, Expr::Col(c));
      }
      return LowerScan(node, catalog, plan, std::move(projections));
    }

    case LogicalNode::Kind::kProject: {
      // Fuse Project(Scan) into a single task (task formation prefers
      // maximal pipelines; the projection rides the scan's pipeline).
      if (node.input->kind == LogicalNode::Kind::kScan) {
        return LowerScan(*node.input, catalog, plan, node.projections);
      }
      RAPID_ASSIGN_OR_RETURN(Lowered in, Lower(*node.input, catalog, plan, path + "0"));
      const int id = NextId(*plan);
      AddStep(plan, std::make_unique<PipeStep>(id, in.step,
                                               std::vector<Predicate>{},
                                               node.projections, 1024));
      Lowered out;
      out.step = id;
      out.est_rows = in.est_rows;
      for (const auto& [name, expr] : node.projections) {
        out.columns.push_back(name);
      }
      return out;
    }

    case LogicalNode::Kind::kFilter: {
      // The host's logical optimizer pushes filters down; a standalone
      // filter over a scan still fuses into the scan task.
      if (node.input->kind == LogicalNode::Kind::kScan) {
        LogicalNode fused = *node.input;
        fused.predicates.insert(fused.predicates.end(),
                                node.predicates.begin(),
                                node.predicates.end());
        if (!node.columns.empty()) fused.columns = node.columns;
        return Lower(fused, catalog, plan, path);
      }
      RAPID_ASSIGN_OR_RETURN(Lowered in, Lower(*node.input, catalog, plan, path + "0"));
      const std::vector<std::string>& keep =
          node.columns.empty() ? in.columns : node.columns;
      std::vector<std::pair<std::string, ExprPtr>> identity;
      for (const std::string& c : keep) {
        identity.emplace_back(c, Expr::Col(c));
      }
      double sel = 1.0;
      for (const Predicate& p : node.predicates) sel *= p.selectivity;
      const int id = NextId(*plan);
      AddStep(plan, std::make_unique<PipeStep>(id, in.step, node.predicates,
                                               std::move(identity), 1024));
      Lowered out;
      out.step = id;
      out.est_rows = in.est_rows * sel;
      out.columns = keep;
      return out;
    }

    case LogicalNode::Kind::kJoin: {
      RAPID_ASSIGN_OR_RETURN(Lowered left, Lower(*node.input, catalog, plan, path + "0"));
      RAPID_ASSIGN_OR_RETURN(Lowered right, Lower(*node.right, catalog, plan, path + "1"));

      // Build on the smaller estimated side. For semi/anti/outer
      // joins the right side is semantically the probe (preserved)
      // side, so only inner joins may swap.
      bool build_is_left = left.est_rows <= right.est_rows;
      if (node.join_type != JoinType::kInner) build_is_left = true;
      const Lowered& build = build_is_left ? left : right;
      const Lowered& probe = build_is_left ? right : left;
      const std::vector<std::string>& build_keys =
          build_is_left ? node.left_keys : node.right_keys;
      const std::vector<std::string>& probe_keys =
          build_is_left ? node.right_keys : node.left_keys;

      // Partition-scheme optimization over the build side.
      PartitionPlanInput pin;
      pin.total_rows = static_cast<size_t>(std::max(1.0, build.est_rows));
      pin.row_bytes = 8 * std::max<size_t>(1, node.output_columns.size());
      pin.num_columns = std::max<size_t>(1, node.output_columns.size());
      pin.dmem_budget_bytes = config_.dmem_bytes / 2;
      // Fan-out must be a real split (>= 2) even on a one-core DPU.
      pin.min_partitions = std::max(2, config_.num_cores);
      pin.num_cores = config_.num_cores;
      pin.largest_morsel_fraction =
          LargestChunkFraction(catalog, build.base_table);
      int fanout;
      PartitionScheme scheme;
      if (options_.force_join_fanout > 0) {
        fanout = options_.force_join_fanout;
        PartitionRound round;
        round.fanout = fanout;
        round.hw_fanout = std::min(32, fanout);
        scheme.rounds.push_back(round);
      } else {
        RAPID_ASSIGN_OR_RETURN(SchemeChoice choice,
                               OptimizePartitionScheme(pin, params_));
        scheme = choice.scheme;
        fanout = choice.target_fanout;
      }
      {
        TraceSpan span(TraceMode::kSummary, TraceCollector::kTrackPlanner,
                       "planner.partition_scheme");
        span.Annotate("build_rows", static_cast<int64_t>(pin.total_rows));
        span.Annotate("fanout", static_cast<int64_t>(fanout));
        span.Annotate("rounds", static_cast<int64_t>(scheme.rounds.size()));
        span.Annotate("forced",
                      options_.force_join_fanout > 0 ? int64_t{1}
                                                     : int64_t{0});
      }

      const int build_part_id = NextId(*plan);
      AddStep(plan, std::make_unique<PartitionStep>(
                        build_part_id, build.step, build_keys, scheme, 1024));
      const int probe_part_id = NextId(*plan);
      AddStep(plan, std::make_unique<PartitionStep>(
                        probe_part_id, probe.step, probe_keys, scheme, 1024));
      // Partition addresses: the rounds over subtree X checkpoint
      // under "X#p" so a retry or demotion replan can restore them
      // (fusion drops the entries when it absorbs the steps).
      plan->subtree_steps.emplace_back(
          path + (build_is_left ? "0" : "1") + "#p", build_part_id);
      plan->subtree_steps.emplace_back(
          path + (build_is_left ? "1" : "0") + "#p", probe_part_id);

      JoinSpec spec;
      spec.tile_rows = options_.join_tile_rows;
      spec.est_rows_per_partition = std::max<size_t>(
          1, static_cast<size_t>(build.est_rows / fanout));
      spec.bucket_reduction = 4.0;
      if (options_.join_dmem_capacity_rows > 0) {
        spec.dmem_capacity_rows = options_.join_dmem_capacity_rows;
      } else {
        // Keys (8 B) + compact bucket/link arrays (~2 x 2 B at DMEM
        // scale) per build row within half the scratchpad.
        spec.dmem_capacity_rows = std::max<size_t>(
            1024, 2 * spec.est_rows_per_partition);
      }
      spec.large_skew_factor = options_.large_skew_factor;
      spec.heavy_hitter_threshold = options_.heavy_hitter_threshold;
      // Cardinality estimates for the pipeline-fusion pass.
      spec.est_build_rows =
          static_cast<size_t>(std::max(1.0, build.est_rows));
      spec.est_probe_rows =
          static_cast<size_t>(std::max(1.0, probe.est_rows));

      // Sideways information passing: when the probe side terminates
      // in a base-table scan, push a Bloom filter over the build keys
      // into that scan so pruned rows never reach the probe-side
      // partition step. Attached whenever structurally eligible and
      // the cost gate passes — INDEPENDENT of the RAPID_JOIN_FILTER
      // runtime gate, so the plan shape is identical off/on.
      //
      // Eligible join types: inner and semi emit only probe rows with
      // a build match, which a (false-negative-free) Bloom prune never
      // drops. Anti and left-outer joins emit probe rows *without* a
      // match — anti emits them alone, left-outer null-extends them —
      // so a probe-side prune would wrongly drop their output; those
      // types rely on the join kernel's internal filter, which keeps
      // the row and only skips the hash probe. The build
      // step must also precede the scan in execution order, or its
      // output would not exist when the scan builds the filter.
      bool scan_ref_attached = false;
      if (build_keys.size() == 1 &&
          (node.join_type == JoinType::kInner ||
           node.join_type == JoinType::kSemi) &&
          build.step < probe.step) {
        auto* scan = dynamic_cast<ScanStep*>(
            plan->steps[static_cast<size_t>(probe.step)].get());
        if (scan != nullptr && !scan->join_filter().enabled()) {
          // The predicate evaluates before projection, so resolve the
          // probe key back to the scan's base column.
          std::string probe_col;
          for (const auto& [name, expr] : scan->projections()) {
            if (name == probe_keys[0] && expr->kind == Expr::Kind::kColumn) {
              probe_col = expr->column;
              break;
            }
          }
          bool probe_bound = false;
          for (const std::string& c : scan->base_columns()) {
            probe_bound = probe_bound || c == probe_col;
          }
          bool build_key_out = false;
          for (const std::string& c : build.columns) {
            build_key_out = build_key_out || c == build_keys[0];
          }
          if (!probe_col.empty() && probe_bound && build_key_out) {
            // Estimated pass rate: the fraction of the build base
            // table surviving its filters (FK probe rows referencing
            // pruned build rows drop with it), plus the sized
            // filter's false-positive rate.
            double sel = 1.0;
            if (!build.base_table.empty()) {
              auto bt = catalog.find(build.base_table);
              if (bt != catalog.end() && bt->second.num_rows() > 0) {
                sel = std::min(1.0, build.est_rows /
                                        static_cast<double>(
                                            bt->second.num_rows()));
              }
            }
            const auto brows =
                static_cast<size_t>(std::max(1.0, build.est_rows));
            const uint32_t blocks =
                primitives::BlockedBloomFilter::BlocksForNdv(
                    brows, config_.dmem_bytes / 4);
            const double fpr =
                primitives::BlockedBloomFilter::EstimatedFpr(brows, blocks);
            CostEstimator est(config_, params_);
            est.set_largest_morsel_fraction(
                LargestChunkFraction(catalog, probe.base_table));
            const double saved = est.JoinFilterSeconds(
                brows, static_cast<size_t>(std::max(1.0, probe.est_rows)),
                8 * std::max<size_t>(1, node.output_columns.size()),
                scheme.rounds.size(), sel, fpr);
            if (blocks > 0 && saved > 0) {
              JoinFilterRef ref;
              ref.build_step = build.step;
              ref.build_key = build_keys[0];
              ref.probe_column = probe_col;
              ref.est_build_ndv = build.est_rows;
              ref.selectivity = std::min(1.0, sel + fpr);
              scan->set_join_filter(std::move(ref));
              scan_ref_attached = true;
            }
            // The cost-gate numbers that made (or rejected) the
            // pushdown, on the planner track.
            TraceSpan span(TraceMode::kSummary,
                           TraceCollector::kTrackPlanner,
                           "planner.join_filter_gate");
            span.Annotate("build_rows", static_cast<int64_t>(brows));
            span.Annotate("blocks", static_cast<int64_t>(blocks));
            span.Annotate("selectivity", sel);
            span.Annotate("fpr", fpr);
            span.Annotate("saved_seconds", saved);
            span.Annotate("attached",
                          scan_ref_attached ? int64_t{1} : int64_t{0});
          }
        }
      }

      // No scan to push into — a non-scan probe subtree, anti/
      // left-outer semantics that forbid dropping probe rows upstream,
      // or a cost-negative pushdown: let the join kernel build the
      // same filter per partition pair ahead of its probe loop. The
      // kernel runs after partitioning, so its gate nets the probe
      // savings alone (rounds = 0) against the filter cost.
      if (!scan_ref_attached && build_keys.size() == 1) {
        double sel = 1.0;
        if (!build.base_table.empty()) {
          auto bt = catalog.find(build.base_table);
          if (bt != catalog.end() && bt->second.num_rows() > 0) {
            sel = std::min(1.0, build.est_rows /
                                    static_cast<double>(
                                        bt->second.num_rows()));
          }
        }
        const auto brows = static_cast<size_t>(std::max(1.0, build.est_rows));
        const size_t blocks = primitives::BlockedBloomFilter::BlocksForNdv(
            brows, config_.dmem_bytes / 4);
        const double fpr =
            primitives::BlockedBloomFilter::EstimatedFpr(brows, blocks);
        CostEstimator est(config_, params_);
        const double saved = est.JoinFilterSeconds(
            brows, static_cast<size_t>(std::max(1.0, probe.est_rows)),
            8 * std::max<size_t>(1, node.output_columns.size()),
            /*rounds=*/0, sel, fpr);
        if (blocks > 0 && saved > 0) spec.build_join_filter = true;
      }

      const int id = NextId(*plan);
      AddStep(plan, std::make_unique<JoinStep>(
                        id, build_part_id, probe_part_id, build_keys,
                        probe_keys, node.output_columns, node.join_type,
                        spec));
      Lowered out;
      out.step = id;
      // FK-join heuristic: output cardinality tracks the probe side.
      out.est_rows = probe.est_rows;
      out.columns = node.output_columns;
      return out;
    }

    case LogicalNode::Kind::kGroupBy: {
      RAPID_ASSIGN_OR_RETURN(Lowered in, Lower(*node.input, catalog, plan, path + "0"));

      // Group count estimate: NDV statistics when keys are plain base
      // columns, a fraction of the input otherwise.
      double est_groups = std::max(1.0, in.est_rows / 10.0);
      bool keys_are_plain = true;
      for (const auto& [name, expr] : node.group_keys) {
        if (expr->kind != Expr::Kind::kColumn) keys_are_plain = false;
      }
      if (keys_are_plain && !in.base_table.empty()) {
        auto t = catalog.find(in.base_table);
        if (t != catalog.end()) {
          double product = 1.0;
          for (const auto& [name, expr] : node.group_keys) {
            auto idx = t->second.schema().IndexOf(expr->column);
            if (idx.ok()) {
              product *= std::max<double>(
                  1.0, static_cast<double>(t->second.stats(idx.value()).ndv));
            }
          }
          est_groups = std::min(product, in.est_rows);
        }
      }

      const bool low_ndv =
          est_groups <= static_cast<double>(options_.low_ndv_threshold) ||
          !keys_are_plain;

      int input_step = in.step;
      if (!low_ndv) {
        // High NDV: distribute distinct groups over dpCores by
        // partitioning on the group-key columns.
        std::vector<std::string> key_cols;
        for (const auto& [name, expr] : node.group_keys) {
          key_cols.push_back(expr->column);
        }
        PartitionPlanInput pin;
        pin.total_rows = static_cast<size_t>(std::max(1.0, in.est_rows));
        pin.row_bytes = 8 * (node.group_keys.size() + node.aggregates.size());
        pin.num_columns = node.group_keys.size() + node.aggregates.size();
        pin.dmem_budget_bytes = config_.dmem_bytes / 2;
        pin.min_partitions = std::max(2, config_.num_cores);
        pin.num_cores = config_.num_cores;
        pin.largest_morsel_fraction =
            LargestChunkFraction(catalog, in.base_table);
        RAPID_ASSIGN_OR_RETURN(SchemeChoice choice,
                               OptimizePartitionScheme(pin, params_));
        const int part_id = NextId(*plan);
        AddStep(plan, std::make_unique<PartitionStep>(
                          part_id, in.step, key_cols, choice.scheme, 1024));
        // Checkpoint address of the group-by input's partition rounds.
        plan->subtree_steps.emplace_back(path + "0#p", part_id);
        input_step = part_id;
      }

      size_t max_rows = options_.groupby_max_partition_rows;
      if (max_rows == 0) {
        // A partition's hash table (keys + states, ~16 B per group per
        // column) must fit half the scratchpad; allow 4x slack before
        // re-partitioning kicks in.
        const size_t row_bytes =
            16 * (node.group_keys.size() + node.aggregates.size());
        max_rows = 4 * (config_.dmem_bytes / 2) / std::max<size_t>(
                                                      1, row_bytes);
      }
      const int id = NextId(*plan);
      AddStep(plan, std::make_unique<GroupByStep>(id, input_step, low_ndv,
                                                  node.group_keys,
                                                  node.aggregates, 1024,
                                                  max_rows));
      Lowered out;
      out.step = id;
      out.est_rows = est_groups;
      for (const auto& [name, expr] : node.group_keys) {
        out.columns.push_back(name);
      }
      for (const AggSpec& a : node.aggregates) out.columns.push_back(a.name);
      return out;
    }

    case LogicalNode::Kind::kSort: {
      RAPID_ASSIGN_OR_RETURN(Lowered in, Lower(*node.input, catalog, plan, path + "0"));
      const int id = NextId(*plan);
      AddStep(plan, std::make_unique<SortStep>(id, in.step, node.sort_keys));
      Lowered out;
      out.step = id;
      out.est_rows = in.est_rows;
      out.columns = in.columns;
      return out;
    }

    case LogicalNode::Kind::kTopK: {
      RAPID_ASSIGN_OR_RETURN(Lowered in, Lower(*node.input, catalog, plan, path + "0"));
      const int id = NextId(*plan);
      AddStep(plan, std::make_unique<TopKStep>(id, in.step, node.sort_keys,
                                               node.limit));
      Lowered out;
      out.step = id;
      out.est_rows = static_cast<double>(node.limit);
      out.columns = in.columns;
      return out;
    }

    case LogicalNode::Kind::kSetOp: {
      RAPID_ASSIGN_OR_RETURN(Lowered l, Lower(*node.input, catalog, plan, path + "0"));
      RAPID_ASSIGN_OR_RETURN(Lowered r, Lower(*node.right, catalog, plan, path + "1"));
      const int id = NextId(*plan);
      AddStep(plan, std::make_unique<SetOpStep>(id, node.setop, l.step,
                                                r.step));
      Lowered out;
      out.step = id;
      out.est_rows = l.est_rows + r.est_rows;
      out.columns = l.columns;
      return out;
    }

    case LogicalNode::Kind::kWindow: {
      RAPID_ASSIGN_OR_RETURN(Lowered in, Lower(*node.input, catalog, plan, path + "0"));
      const int id = NextId(*plan);
      AddStep(plan, std::make_unique<WindowStep>(id, in.step, node.windows));
      Lowered out;
      out.step = id;
      out.est_rows = in.est_rows;
      out.columns = in.columns;
      for (const LogicalWindow& w : node.windows) {
        out.columns.push_back(w.output_name);
      }
      return out;
    }
  }
  return Status::Internal("unreachable logical node kind");
}

Result<PhysicalPlan> Planner::Plan(const LogicalPtr& root,
                                   const Catalog& catalog) {
  if (root == nullptr) {
    return Status::InvalidArgument("logical plan is null");
  }
  PhysicalPlan plan;
  RAPID_ASSIGN_OR_RETURN(Lowered lowered, Lower(*root, catalog, &plan, ""));
  plan.root = lowered.step;
  // Tile-pipeline fusion pass. Skew/capacity overrides force the
  // partitioned join machinery, so fusion stands down for them.
  if (options_.enable_fusion && options_.force_join_fanout == 0 &&
      options_.heavy_hitter_threshold == 0 &&
      options_.join_dmem_capacity_rows == 0) {
    RAPID_ASSIGN_OR_RETURN(
        plan, FusePipelines(std::move(plan), config_,
                            options_.fusion_max_build_rows, params_,
                            &catalog));
  }
  return plan;
}

}  // namespace rapid::core
