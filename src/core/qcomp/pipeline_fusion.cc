#include "core/qcomp/pipeline_fusion.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/trace.h"
#include "core/qcomp/task_formation.h"
#include "primitives/bloom.h"
#include "storage/encoding_stack.h"

namespace rapid::core {

namespace {

// Column names an expression list reads (deduplicated, in order).
std::vector<std::string> ExprColumns(
    const std::vector<std::pair<std::string, ExprPtr>>& projections) {
  std::vector<std::string> cols;
  for (const auto& [name, expr] : projections) {
    std::vector<std::string> refs;
    expr->CollectColumns(&refs);
    for (const auto& r : refs) {
      if (std::find(cols.begin(), cols.end(), r) == cols.end()) {
        cols.push_back(r);
      }
    }
  }
  return cols;
}

// A pipeline-safe chain accumulated but not yet emitted. Keyed by the
// old id of the last absorbed step; flushed (as the original step when
// nothing fused, as a PipelineStep otherwise) the first time a
// non-fusable consumer needs it.
struct Desc {
  std::string table;                     // base-table source, or
  int input = -1;                        // old id of intermediate source
  std::vector<std::string> base_columns;
  std::vector<PipelineStageSpec> stages;
  size_t tile_rows = 1024;
  bool use_rid_list = false;
  size_t fused_steps = 1;  // original steps absorbed into this chain
  int original = -1;       // old id of the sole step when fused_steps == 1
};

class Fuser {
 public:
  Fuser(PhysicalPlan plan, const dpu::DpuConfig& config, size_t max_build_rows,
        const dpu::CostParams& params,
        const std::unordered_map<std::string, storage::Table>* catalog)
      : plan_(std::move(plan)),
        config_(config),
        max_build_rows_(max_build_rows),
        params_(params),
        catalog_(catalog),
        old_to_new_(plan_.steps.size(), -1),
        consumers_(plan_.steps.size(), 0) {}

  Result<PhysicalPlan> Run();

 private:
  Result<int> Materialize(int old_id);
  Status HandleJoin(int id, JoinStep* join);
  bool ChainFitsDmem(const Desc& desc, const PipelineStageSpec* extra) const;

  PhysicalPlan plan_;
  const dpu::DpuConfig& config_;
  const size_t max_build_rows_;
  const dpu::CostParams& params_;
  const std::unordered_map<std::string, storage::Table>* catalog_;

  PhysicalPlan out_;
  std::vector<int> old_to_new_;
  std::vector<int> consumers_;
  std::unordered_map<int, Desc> pending_;
  std::unordered_set<int> deferred_partitions_;
};

// Checks via task formation that the chain (plus an optional extra
// stage) fits the per-core DMEM budget at some tile size.
bool Fuser::ChainFitsDmem(const Desc& desc,
                          const PipelineStageSpec* extra) const {
  std::vector<OpProfile> profiles;
  const size_t src_cols =
      desc.table.empty() ? 4 : std::max<size_t>(1, desc.base_columns.size());
  // Encoded scans stage each compressed base column's runs (values +
  // lengths, double-buffered) alongside the plain tile; the gate must
  // budget that extra DMEM or fusion could admit a chain the accessor
  // then degrades to plain transfers.
  size_t staging_bytes = 0;
  double decode_rate = 0.0;
  if (catalog_ != nullptr && !desc.table.empty() &&
      storage::EncodedScanActive() == storage::EncodedScanMode::kAuto) {
    auto it = catalog_->find(desc.table);
    if (it != catalog_->end()) {
      const storage::Table& t = it->second;
      for (const std::string& c : desc.base_columns) {
        auto idx = t.schema().IndexOf(c);
        if (!idx.ok()) continue;
        const double ratio = t.stats(idx.value()).compression_ratio;
        if (ratio <= 1.05) continue;
        const size_t w =
            storage::WidthOf(t.schema().field(idx.value()).type);
        staging_bytes += static_cast<size_t>(
            2.0 * static_cast<double>(w) / ratio + 1.0);
        decode_rate +=
            params_.rle_decode_cycles_per_row / params_.simd.rle;
      }
    }
  }
  profiles.push_back({"accessor", 64, 2 * 8 * src_cols + staging_bytes, 1.0,
                      8 * src_cols, decode_rate});

  // Per-row compute rates reflect the dispatched SIMD kernels so the
  // gate's formation profiles match what execution will charge.
  const double filter_rate =
      params_.filter_cycles_per_row / params_.simd.filter;
  const double arith_rate = params_.arith_cycles_per_row / params_.simd.arith;
  const double probe_rate = params_.join_probe_cycles_per_row +
                            params_.hash_cycles_per_row / params_.simd.hash;
  auto add_stage = [&](const PipelineStageSpec& stage) {
    if (stage.kind == PipelineStageSpec::Kind::kFilterProject) {
      const size_t pass = ExprColumns(stage.projections).size();
      // A pushed join filter keeps its blocked Bloom filter resident
      // beside the tiles and adds one probe per row. Budgeted here
      // whether or not the runtime gate is on, so fusion decisions
      // are identical off/on.
      size_t jf_bytes = 0;
      double rate = filter_rate;
      if (stage.join_filter.enabled()) {
        const auto ndv = static_cast<size_t>(
            std::max(1.0, stage.join_filter.est_build_ndv));
        jf_bytes = primitives::kBloomBlockBytes *
                   primitives::BlockedBloomFilter::BlocksForNdv(
                       ndv, config_.dmem_bytes / 4);
        rate += params_.bloom_probe_cycles_per_row / params_.simd.bloom;
      }
      profiles.push_back(
          {"filter", 64 + jf_bytes, 8 * (pass + 1), 1.0, 8, rate});
      profiles.push_back(
          {"project", 64, 8 * std::max<size_t>(1, stage.projections.size()),
           1.0, 8 * std::max<size_t>(1, stage.projections.size()),
           arith_rate});
    } else {
      // Broadcast table: ~6 bytes/build row covers bucket heads plus
      // chain links at the capacities the gate admits.
      const size_t table_bytes = 6 * std::max<size_t>(64, stage.join_spec.est_build_rows);
      const size_t out_width = 8 * std::max<size_t>(1, stage.output_columns.size());
      profiles.push_back(
          {"probe", table_bytes, out_width + 8, 1.0, out_width, probe_rate});
    }
  };
  for (const auto& stage : desc.stages) add_stage(stage);
  if (extra != nullptr) add_stage(*extra);

  return MaxTileRows(profiles, 0, profiles.size() - 1, config_.dmem_bytes).ok();
}

Result<int> Fuser::Materialize(int old_id) {
  if (old_to_new_[static_cast<size_t>(old_id)] >= 0) {
    return old_to_new_[static_cast<size_t>(old_id)];
  }

  auto pit = pending_.find(old_id);
  if (pit != pending_.end()) {
    Desc desc = std::move(pit->second);
    pending_.erase(pit);
    int new_input = -1;
    if (desc.table.empty()) {
      RAPID_ASSIGN_OR_RETURN(new_input, Materialize(desc.input));
    }
    // A pushed join-filter ref must resolve before this chain is
    // numbered: the build terminal has to be emitted — and therefore
    // execute — ahead of the scan that reads its output. The ScanStep
    // re-emission path below resolves through RemapInputs instead;
    // materializing here makes the old->new mapping valid for both.
    if (!desc.stages.empty() && desc.stages.front().join_filter.enabled()) {
      RAPID_ASSIGN_OR_RETURN(
          desc.stages.front().join_filter.build_step,
          Materialize(desc.stages.front().join_filter.build_step));
    }
    const int nid = static_cast<int>(out_.steps.size());
    const bool has_probe = std::any_of(
        desc.stages.begin(), desc.stages.end(), [](const PipelineStageSpec& s) {
          return s.kind == PipelineStageSpec::Kind::kProbe;
        });
    if (desc.fused_steps == 1 && !has_probe) {
      // Nothing fused: keep the original step (renumbered).
      auto step = std::move(plan_.steps[static_cast<size_t>(desc.original)]);
      step->RemapInputs(old_to_new_);
      step->set_id(nid);
      out_.steps.push_back(std::move(step));
    } else {
      out_.steps.push_back(std::make_unique<PipelineStep>(
          nid, desc.table, std::move(desc.base_columns), new_input,
          std::move(desc.stages), desc.tile_rows, desc.use_rid_list));
    }
    old_to_new_[static_cast<size_t>(old_id)] = nid;
    return nid;
  }

  if (deferred_partitions_.count(old_id) > 0) {
    deferred_partitions_.erase(old_id);
    auto* part =
        static_cast<PartitionStep*>(plan_.steps[static_cast<size_t>(old_id)].get());
    RAPID_RETURN_NOT_OK(Materialize(part->input()).status());
    auto step = std::move(plan_.steps[static_cast<size_t>(old_id)]);
    const int nid = static_cast<int>(out_.steps.size());
    step->RemapInputs(old_to_new_);
    step->set_id(nid);
    out_.steps.push_back(std::move(step));
    old_to_new_[static_cast<size_t>(old_id)] = nid;
    return nid;
  }

  return Status::Internal("pipeline fusion: step #" + std::to_string(old_id) +
                          " has no pending chain and was never emitted");
}

Status Fuser::HandleJoin(int id, JoinStep* join) {
  const int build_part = join->build_input();
  const int probe_part = join->probe_input();

  // Broadcast-probe eligibility: both inputs are single-consumer
  // PartitionSteps, the probe partition's producer is a pending
  // single-consumer chain, the planner estimates a small build side,
  // and the extended chain still fits DMEM.
  bool fuse = max_build_rows_ > 0 &&
              deferred_partitions_.count(build_part) > 0 &&
              deferred_partitions_.count(probe_part) > 0 &&
              consumers_[static_cast<size_t>(build_part)] == 1 &&
              consumers_[static_cast<size_t>(probe_part)] == 1;
  int build_src = -1;
  int probe_src = -1;
  if (fuse) {
    build_src = static_cast<PartitionStep*>(
                    plan_.steps[static_cast<size_t>(build_part)].get())
                    ->input();
    probe_src = static_cast<PartitionStep*>(
                    plan_.steps[static_cast<size_t>(probe_part)].get())
                    ->input();
    const JoinSpec& spec = join->spec_template();
    // Broadcast-cost gate: each participating core re-reads the build
    // side, which must stay below the movement fusion eliminates —
    // both partition passes (~2 x build + 2 x probe) plus the
    // probe-side scan materialization (~1 x probe... folded as
    // 2 x probe + 3 x build). The morsel scheduler builds the chain
    // lazily per core, so a small probe side (few morsels at the
    // ~64-row minimum granularity) engages — and pays the broadcast
    // on — fewer than num_cores cores.
    const size_t participating = std::min<size_t>(
        static_cast<size_t>(config_.num_cores),
        std::max<size_t>(1, spec.est_probe_rows / 64));
    const size_t broadcast_rows = participating * spec.est_build_rows;
    const size_t saved_rows = 3 * spec.est_build_rows + 2 * spec.est_probe_rows;
    fuse = pending_.count(probe_src) > 0 &&
           consumers_[static_cast<size_t>(probe_src)] == 1 &&
           spec.est_build_rows > 0 &&
           spec.est_build_rows <= max_build_rows_ &&
           spec.est_build_rows <= std::max<size_t>(1, spec.est_probe_rows) &&
           broadcast_rows <= saved_rows;
    // The broadcast-gate numbers behind the decision, on the planner
    // track (the DMEM fit check below may still veto the fusion).
    TraceSpan span(TraceMode::kSummary, TraceCollector::kTrackPlanner,
                   "fusion.broadcast_gate");
    span.Annotate("build_rows", static_cast<int64_t>(spec.est_build_rows));
    span.Annotate("probe_rows", static_cast<int64_t>(spec.est_probe_rows));
    span.Annotate("participating", static_cast<int64_t>(participating));
    span.Annotate("broadcast_rows", static_cast<int64_t>(broadcast_rows));
    span.Annotate("saved_rows", static_cast<int64_t>(saved_rows));
    span.Annotate("fuse", fuse ? int64_t{1} : int64_t{0});
  }
  if (fuse) {
    PipelineStageSpec stage;
    stage.kind = PipelineStageSpec::Kind::kProbe;
    stage.build_keys = join->build_keys();
    stage.probe_keys = join->probe_keys();
    stage.output_columns = join->output_columns();
    stage.join_type = join->type();
    stage.join_spec = join->spec_template();
    // The broadcast table holds the whole (unpartitioned) build side.
    stage.join_spec.dmem_capacity_rows =
        std::max<size_t>(1024, 2 * stage.join_spec.est_build_rows);
    fuse = ChainFitsDmem(pending_.at(probe_src), &stage);
    if (fuse) {
      RAPID_ASSIGN_OR_RETURN(stage.build_input, Materialize(build_src));
      Desc desc = std::move(pending_.at(probe_src));
      pending_.erase(probe_src);
      desc.stages.push_back(std::move(stage));
      desc.fused_steps += 3;  // both partitions + the join itself
      deferred_partitions_.erase(build_part);
      deferred_partitions_.erase(probe_part);
      plan_.steps[static_cast<size_t>(build_part)].reset();
      plan_.steps[static_cast<size_t>(probe_part)].reset();
      pending_.emplace(id, std::move(desc));
      return Status::OK();
    }
  }

  // Not fusable: keep the partitioned join as-is.
  RAPID_RETURN_NOT_OK(Materialize(build_part).status());
  RAPID_RETURN_NOT_OK(Materialize(probe_part).status());
  auto step = std::move(plan_.steps[static_cast<size_t>(id)]);
  const int nid = static_cast<int>(out_.steps.size());
  step->RemapInputs(old_to_new_);
  step->set_id(nid);
  out_.steps.push_back(std::move(step));
  old_to_new_[static_cast<size_t>(id)] = nid;
  return Status::OK();
}

Result<PhysicalPlan> Fuser::Run() {
  const size_t n = plan_.steps.size();
  if (plan_.root < 0 || static_cast<size_t>(plan_.root) >= n) {
    return std::move(plan_);
  }
  for (const auto& step : plan_.steps) {
    for (int in : step->Inputs()) ++consumers_[static_cast<size_t>(in)];
  }
  ++consumers_[static_cast<size_t>(plan_.root)];  // the query result itself

  for (size_t id = 0; id < n; ++id) {
    PlanStep* step = plan_.steps[id].get();
    if (step == nullptr) continue;  // partition absorbed by a fused probe

    if (auto* scan = dynamic_cast<ScanStep*>(step)) {
      Desc desc;
      desc.table = scan->table();
      desc.base_columns = scan->base_columns();
      desc.tile_rows = scan->tile_rows();
      desc.use_rid_list = scan->use_rid_list();
      desc.original = static_cast<int>(id);
      PipelineStageSpec stage;
      stage.predicates = scan->predicates();
      stage.projections = scan->projections();
      stage.join_filter = scan->join_filter();
      desc.stages.push_back(std::move(stage));
      pending_.emplace(static_cast<int>(id), std::move(desc));
      continue;
    }

    if (auto* pipe = dynamic_cast<PipeStep*>(step)) {
      PipelineStageSpec stage;
      stage.predicates = pipe->predicates();
      stage.projections = pipe->projections();
      const int in = pipe->input();
      auto pit = pending_.find(in);
      if (pit != pending_.end() && consumers_[static_cast<size_t>(in)] == 1 &&
          ChainFitsDmem(pit->second, &stage)) {
        Desc desc = std::move(pit->second);
        pending_.erase(pit);
        desc.stages.push_back(std::move(stage));
        desc.tile_rows = std::min(desc.tile_rows, pipe->tile_rows());
        ++desc.fused_steps;
        pending_.emplace(static_cast<int>(id), std::move(desc));
      } else {
        Desc desc;
        desc.input = in;
        desc.tile_rows = pipe->tile_rows();
        desc.original = static_cast<int>(id);
        desc.stages.push_back(std::move(stage));
        pending_.emplace(static_cast<int>(id), std::move(desc));
      }
      continue;
    }

    if (dynamic_cast<PartitionStep*>(step) != nullptr) {
      // Emission deferred: a fusable join consumes it without ever
      // materializing the partitioned sets.
      deferred_partitions_.insert(static_cast<int>(id));
      continue;
    }

    if (auto* join = dynamic_cast<JoinStep*>(step)) {
      RAPID_RETURN_NOT_OK(HandleJoin(static_cast<int>(id), join));
      continue;
    }

    // Pipeline breaker (group-by, sort, top-k, set op, window, ...):
    // materialize its inputs and re-emit it unchanged.
    for (int in : step->Inputs()) {
      RAPID_RETURN_NOT_OK(Materialize(in).status());
    }
    auto owned = std::move(plan_.steps[id]);
    const int nid = static_cast<int>(out_.steps.size());
    owned->RemapInputs(old_to_new_);
    owned->set_id(nid);
    out_.steps.push_back(std::move(owned));
    old_to_new_[id] = nid;
  }

  RAPID_ASSIGN_OR_RETURN(out_.root, Materialize(plan_.root));

  // Flush anything unreachable from the root (defensive: lowered plans
  // should not produce dead steps, but never silently drop them).
  for (size_t id = 0; id < n; ++id) {
    if (old_to_new_[id] < 0 &&
        (pending_.count(static_cast<int>(id)) > 0 ||
         deferred_partitions_.count(static_cast<int>(id)) > 0)) {
      RAPID_RETURN_NOT_OK(Materialize(static_cast<int>(id)).status());
    }
  }
  // Carry the planner's subtree map across the renumbering. An old
  // step has old_to_new_ >= 0 exactly when its output survives as a
  // step of the fused plan (a chain's terminal maps to its pipeline);
  // steps absorbed mid-pipeline never materialize their rows, so
  // their subtree entries are dropped. "#p" partition addresses ride
  // the same remap: a partition step absorbed by a broadcast-probe
  // rewrite maps to -1 and its checkpoint address disappears with it.
  for (const auto& [path, old_id] : plan_.subtree_steps) {
    const int nid = old_to_new_[static_cast<size_t>(old_id)];
    if (nid >= 0) out_.subtree_steps.emplace_back(path, nid);
  }
  return std::move(out_);
}

}  // namespace

Result<PhysicalPlan> FusePipelines(
    PhysicalPlan plan, const dpu::DpuConfig& config, size_t max_build_rows,
    const dpu::CostParams& params,
    const std::unordered_map<std::string, storage::Table>* catalog) {
  Fuser fuser(std::move(plan), config, max_build_rows, params, catalog);
  return fuser.Run();
}

}  // namespace rapid::core
