// Partition-scheme optimization (Section 5.3).
//
// The required number of partitions is total data size / DMEM size,
// adjusted up to the degree of parallelism (>= 32 on the DPU) and
// rounded to a power of two. A scheme is a factorization of that
// target into rounds; the optimizer searches factorizations under the
// paper's heuristics:
//   a) fan-out at each round is a power of two,
//   b) fan-out is bounded by the maximum per-round fan-out,
//   c) fewer rounds are preferred (each round rescans the data),
//   d) symmetric fan-outs are favoured (8x8 over 16x4),
// costing each candidate with the calibrated cost functions and
// keeping the cheapest.

#ifndef RAPID_CORE_QCOMP_PARTITION_SCHEME_H_
#define RAPID_CORE_QCOMP_PARTITION_SCHEME_H_

#include <cstddef>

#include "common/status.h"
#include "core/ops/partition_exec.h"
#include "dpu/config.h"
#include "dpu/cost_model.h"

namespace rapid::core {

struct PartitionPlanInput {
  size_t total_rows = 0;
  size_t row_bytes = 8;       // bytes per row across partitioned columns
  size_t num_columns = 1;
  size_t dmem_budget_bytes = 16 * 1024;  // DMEM available per kernel
  int min_partitions = 32;    // degree of parallelism (32 dpCores)
  int max_round_fanout = 1024;  // HW 32 x SW 32 in one pass
  int max_sw_fanout = 64;       // Figure 10: feasible without perf drop
  size_t tile_rows = 256;
  int num_cores = 32;         // cores sharing each round's work
  // Largest single morsel's share of a round's cycles (e.g. the
  // biggest input chunk / total rows). 0 models perfectly balanced
  // morsels; skewed inputs raise the balanced-makespan round cost.
  double largest_morsel_fraction = 0.0;
};

struct SchemeChoice {
  PartitionScheme scheme;
  double cycles = 0;  // modeled partitioning cost
  int target_fanout = 1;
};

// Computes the required number of partitions for the input.
int RequiredPartitions(const PartitionPlanInput& in);

// Searches factorizations of the required partition count and returns
// the cheapest scheme.
Result<SchemeChoice> OptimizePartitionScheme(const PartitionPlanInput& in,
                                             const dpu::CostParams& params);

// Models the cycles of executing `scheme` over the input (used by the
// optimizer and exposed for the ablation benchmark).
double SchemeCycles(const PartitionScheme& scheme,
                    const PartitionPlanInput& in,
                    const dpu::CostParams& params);

}  // namespace rapid::core

#endif  // RAPID_CORE_QCOMP_PARTITION_SCHEME_H_
