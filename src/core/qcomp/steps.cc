#include "core/qcomp/steps.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/trace.h"
#include "core/join_filter.h"
#include "core/ops/filter_op.h"
#include "core/ops/probe_op.h"
#include "core/ops/project_op.h"
#include "core/ops/sink_op.h"
#include "core/qef/relation_accessor.h"
#include "primitives/bloom.h"

namespace rapid::core {

namespace {

// Columns the filter must pass through to the projection stage.
std::vector<std::string> ProjectionInputs(
    const std::vector<std::pair<std::string, ExprPtr>>& projections) {
  std::vector<std::string> cols;
  for (const auto& [name, expr] : projections) {
    std::vector<std::string> refs;
    expr->CollectColumns(&refs);
    for (const auto& r : refs) {
      if (std::find(cols.begin(), cols.end(), r) == cols.end()) {
        cols.push_back(r);
      }
    }
  }
  return cols;
}

std::vector<ColumnMeta> ProjectionMetas(
    const std::vector<std::pair<std::string, ExprPtr>>& projections) {
  std::vector<ColumnMeta> metas;
  metas.reserve(projections.size());
  for (const auto& [name, expr] : projections) {
    ColumnMeta m;
    m.name = name;
    metas.push_back(m);
  }
  return metas;
}

Result<size_t> FindColumn(const ColumnSet& set, const std::string& name) {
  return set.IndexOf(name);
}

// Largest power-of-two tile (>= 64, <= requested) whose DMEM footprint
// fits the per-core scratchpad: the runtime equivalent of task
// formation's vector-size selection for steps whose input width is
// only known at execution time.
size_t FitTileRows(size_t requested, size_t bytes_per_row,
                   size_t dmem_bytes) {
  size_t tile = 64;
  while (tile * 2 <= requested && bytes_per_row * tile * 2 <= dmem_bytes) {
    tile *= 2;
  }
  return tile;
}

// Contiguous row-range morsels: ~4 per core so the work queue can
// balance uneven per-row costs, floored at the minimum tile so tiles
// never degenerate. Results are independent of the split because every
// order-preserving operator's outputs concatenate in range order.
struct RowRange {
  size_t begin = 0;
  size_t end = 0;
};

std::vector<RowRange> RowMorsels(size_t n, int num_cores) {
  std::vector<RowRange> ranges;
  if (n == 0) {
    ranges.push_back(RowRange{0, 0});
    return ranges;
  }
  const size_t slots = static_cast<size_t>(num_cores) * 4;
  const size_t target = std::max<size_t>(64, (n + slots - 1) / slots);
  for (size_t begin = 0; begin < n; begin += target) {
    ranges.push_back(RowRange{begin, std::min(n, begin + target)});
  }
  return ranges;
}

std::vector<double> RangeWeights(const std::vector<RowRange>& ranges) {
  std::vector<double> weights;
  weights.reserve(ranges.size());
  for (const RowRange& r : ranges) {
    weights.push_back(static_cast<double>(r.end - r.begin));
  }
  return weights;
}

// Builds the pushed-down Bloom filter from the build step's
// materialized output. Returns false (filter left empty) when the
// runtime gate is off, no ref was attached, or the build output is
// unsuitable at runtime — the scan then runs exactly as planned
// without the extra predicate. On success, charges every core the
// modeled per-core construction (broadcast-join style: each core
// reads the DRAM-resident key column and builds its private
// DMEM-resident filter; the host builds one shared read-only copy).
// Deliberately performs no fault polls, pool acquires or DMEM
// allocations, so fault-injection ordinals and DMEM layout do not
// shift with the gate.
bool BuildJoinFilter(ExecEnv& env, const JoinFilterRef& ref,
                     primitives::BlockedBloomFilter* filter) {
  if (!ref.enabled()) return false;
  if (JoinFilterActive() != JoinFilterMode::kAuto) return false;
  const StepOutput& build = env.outputs[static_cast<size_t>(ref.build_step)];
  if (build.partitioned) return false;
  auto key = build.set.IndexOf(ref.build_key);
  if (!key.ok()) return false;
  const size_t rows = build.set.num_rows();
  // The resident filter must share DMEM with the scan chain's tiles;
  // cap it at a quarter of the scratchpad.
  const size_t max_bytes = env.dpu->config().dmem_bytes / 4;
  const uint32_t num_blocks =
      primitives::BlockedBloomFilter::BlocksForNdv(rows, max_bytes);
  if (num_blocks == 0) return false;
  // Host-track span (orchestrator thread); recording obeys the same
  // no-fault-poll / no-pool / no-DMEM discipline as the build itself.
  TraceSpan span(TraceMode::kSummary, TraceCollector::kTrackHost,
                 "joinfilter.build");
  span.Annotate("build_rows", static_cast<int64_t>(rows));
  span.Annotate("blocks", static_cast<int64_t>(num_blocks));
  *filter = primitives::BlockedBloomFilter(num_blocks);
  const size_t kcol = key.value();
  for (size_t r = 0; r < rows; ++r) {
    // Same widening as the probe-side kernels and the join's own
    // build: ColumnSet values are already widened int64.
    filter->Insert(static_cast<uint64_t>(build.set.Value(r, kcol)));
  }
  const dpu::CostParams& p = env.dpu->params();
  const double insert_cycles = p.bloom_insert_cycles_per_row / p.simd.bloom *
                               static_cast<double>(rows);
  const double dms_cycles =
      dpu::DmsTileTransferCycles(p, 1, rows, 8, /*read_write=*/false) +
      static_cast<double>(filter->bytes()) / p.dram_bytes_per_cycle;
  env.dpu->ParallelFor([&](dpu::DpCore& core) {
    core.cycles().ChargeCompute(insert_cycles);
    core.cycles().ChargeDms(dms_cycles);
    if (core.id() == 0) {
      core.join_filter().filters_built += 1;
      core.join_filter().filter_bytes += filter->bytes();
    }
  });
  span.Annotate("filter_bytes", static_cast<int64_t>(filter->bytes()));
  return true;
}

}  // namespace

std::string PhysicalPlan::Describe() const {
  std::ostringstream os;
  for (const auto& step : steps) {
    os << "#" << step->id() << " " << step->Describe() << "\n";
  }
  return os.str();
}

// ---- ScanStep --------------------------------------------------------------

Status ScanStep::Execute(ExecEnv& env) const {
  auto table_it = env.catalog->find(table_);
  if (table_it == env.catalog->end()) {
    return Status::NotFound("table '" + table_ + "' not loaded");
  }
  const storage::Table& table = table_it->second;

  // Resolve base columns to table indices and target DSB scales.
  std::vector<size_t> col_indices;
  std::vector<int> target_scales;
  ColumnBinding base_binding;
  for (size_t c = 0; c < base_columns_.size(); ++c) {
    RAPID_ASSIGN_OR_RETURN(size_t idx,
                           table.schema().IndexOf(base_columns_[c]));
    col_indices.push_back(idx);
    target_scales.push_back(table.stats(idx).dsb_scale);
    base_binding[base_columns_[c]] = c;
  }

  // Assign chunks to cores round-robin across all horizontal
  // partitions.
  std::vector<const storage::Chunk*> all_chunks;
  for (size_t p = 0; p < table.num_partitions(); ++p) {
    const storage::Partition& part = table.partition(p);
    for (size_t c = 0; c < part.num_chunks(); ++c) {
      all_chunks.push_back(&part.chunk(c));
    }
  }

  size_t scan_rows = 0;
  size_t scan_width = 0;
  for (size_t c = 0; c < col_indices.size(); ++c) {
    scan_width +=
        storage::WidthOf(table.schema().field(col_indices[c]).type);
  }
  for (const storage::Chunk* chunk : all_chunks) scan_rows += chunk->num_rows();
  env.counters.scanned_rows += scan_rows;
  env.counters.scanned_bytes += scan_rows * scan_width;

  const int num_cores = env.dpu->num_cores();
  std::vector<ColumnMeta> metas = ProjectionMetas(projections_);
  // Plain column projections carry the source column's logical type
  // (so dates format and downstream cycle charges use encoded widths)
  // and its dictionary (so results can decode to strings).
  for (size_t c = 0; c < projections_.size(); ++c) {
    const Expr& expr = *projections_[c].second;
    if (expr.kind == Expr::Kind::kColumn) {
      auto idx = table.schema().IndexOf(expr.column);
      if (idx.ok()) {
        metas[c].type = table.schema().field(idx.value()).type;
        metas[c].dict = table.dictionary(idx.value());
      }
    }
  }
  const std::vector<std::string> pass_through = ProjectionInputs(projections_);

  // Join-filter pushdown: when a ref is attached and the runtime gate
  // is on, evaluate the build side's Bloom filter as one more
  // predicate inside the fused tile loop — pruned rows never reach
  // projection, materialization or the downstream partition step.
  primitives::BlockedBloomFilter join_bloom;
  std::vector<Predicate> predicates = predicates_;
  if (BuildJoinFilter(env, join_filter_, &join_bloom)) {
    predicates.push_back(Predicate::Bloom(join_filter_.probe_column,
                                          &join_bloom,
                                          join_filter_.selectivity));
  }

  // Morsel-driven scan: one morsel per chunk, seeded largest-first by
  // row count so one core never drags a tail of fat chunks. Outputs
  // are indexed by chunk id, so the merged result is independent of
  // which core ran which chunk.
  std::vector<ColumnSet> per_morsel(all_chunks.size(), ColumnSet(metas));
  std::vector<double> weights;
  weights.reserve(all_chunks.size());
  for (const storage::Chunk* chunk : all_chunks) {
    weights.push_back(static_cast<double>(chunk->num_rows()));
  }
  dpu::WorkQueue queue(std::move(weights), num_cores);
  RAPID_RETURN_NOT_OK(env.dpu->ParallelForMorsels(
      queue, env.cancel, [&](dpu::DpCore& core, size_t m) -> Status {
        TraceSpan span(TraceMode::kFull, core.id(), "scan.morsel",
                       &dpu::TraceClockNow, &core.cycles());
        span.Annotate("chunk", static_cast<int64_t>(m));
        core.dmem().Reset();

        // Build this morsel's pipeline: filter -> project -> sink.
        FilterOp filter(predicates, pass_through, base_binding, tile_rows_,
                        use_rid_list_);
        ProjectOp project(projections_, filter.OutputBinding(), tile_rows_);
        MaterializeSink sink(&per_morsel[m]);
        filter.set_downstream(&project);
        project.set_downstream(&sink);

        ExecCtx ctx{&core, &env.dpu->dms(), &env.dpu->params(),
                    env.vectorized, env.cancel};
        Status st = filter.Open(ctx);
        if (st.ok()) st = project.Open(ctx);
        if (st.ok()) st = sink.Open(ctx);
        if (st.ok()) {
          const std::vector<const storage::Chunk*> mine{all_chunks[m]};
          st = RelationAccessor::PushChunks(ctx, mine, col_indices,
                                            target_scales, tile_rows_,
                                            &filter);
        }
        core.dmem().Reset();
        span.Annotate("rows_out",
                      static_cast<uint64_t>(per_morsel[m].num_rows()));
        return st;
      }));

  StepOutput& out = env.outputs[static_cast<size_t>(id_)];
  out.partitioned = false;
  out.set = ColumnSet(metas);
  for (size_t m = 0; m < per_morsel.size(); ++m) {
    // Propagate observed types/scales to the merged output.
    for (size_t col = 0; col < metas.size(); ++col) {
      if (per_morsel[m].num_rows() > 0) {
        out.set.meta(col) = per_morsel[m].meta(col);
      }
    }
  }
  for (ColumnSet& cs : per_morsel) out.set.Append(cs);
  return Status::OK();
}

std::string ScanStep::Describe() const {
  std::ostringstream os;
  os << "SCAN " << table_ << " preds=" << predicates_.size()
     << " proj=" << projections_.size() << " tile=" << tile_rows_
     << (use_rid_list_ ? " rid" : " bv");
  if (join_filter_.enabled()) {
    os << " joinfilter=#" << join_filter_.build_step << "("
       << join_filter_.probe_column << ")";
  }
  return os.str();
}

// ---- PipeStep --------------------------------------------------------------

Status PipeStep::Execute(ExecEnv& env) const {
  const StepOutput& in = env.outputs[static_cast<size_t>(input_)];
  if (in.partitioned) {
    return Status::InvalidArgument("pipe step needs an unpartitioned input");
  }
  const ColumnSet& input = in.set;
  env.counters.scanned_rows += input.num_rows();
  env.counters.scanned_bytes +=
      input.num_rows() * input.num_columns() * sizeof(int64_t);

  ColumnBinding binding;
  std::vector<size_t> col_indices;
  for (size_t c = 0; c < input.num_columns(); ++c) {
    binding[input.meta(c).name] = c;
    col_indices.push_back(c);
  }

  const int num_cores = env.dpu->num_cores();
  std::vector<ColumnMeta> metas = ProjectionMetas(projections_);
  for (size_t c = 0; c < projections_.size(); ++c) {
    const Expr& expr = *projections_[c].second;
    if (expr.kind == Expr::Kind::kColumn) {
      auto idx = input.IndexOf(expr.column);
      if (idx.ok()) {
        metas[c].type = input.meta(idx.value()).type;
        metas[c].dsb_scale = input.meta(idx.value()).dsb_scale;
        metas[c].dict = input.meta(idx.value()).dict;
      }
    }
  }
  const std::vector<std::string> pass_through = ProjectionInputs(projections_);
  const size_t n = input.num_rows();
  // Accessor double buffers, filter materializes pass-through columns
  // plus the selection, project its outputs — all widened to 8 bytes.
  const size_t bytes_per_row =
      8 * (2 * col_indices.size() + pass_through.size() +
           projections_.size()) + 8;
  const size_t tile_rows = FitTileRows(
      tile_rows_, bytes_per_row, env.dpu->config().dmem_bytes);

  // Row-range morsels; per-range outputs concatenate in range order,
  // which reproduces the input order no matter how the split landed.
  const std::vector<RowRange> ranges = RowMorsels(n, num_cores);
  std::vector<ColumnSet> per_morsel(ranges.size(), ColumnSet(metas));
  dpu::WorkQueue queue(RangeWeights(ranges), num_cores);
  RAPID_RETURN_NOT_OK(env.dpu->ParallelForMorsels(
      queue, env.cancel, [&](dpu::DpCore& core, size_t m) -> Status {
        TraceSpan span(TraceMode::kFull, core.id(), "pipe.morsel",
                       &dpu::TraceClockNow, &core.cycles());
        span.Annotate("morsel", static_cast<int64_t>(m));
        const RowRange& range = ranges[m];
        core.dmem().Reset();

        FilterOp filter(predicates_, pass_through, binding, tile_rows,
                        /*use_rid_list=*/false);
        ProjectOp project(projections_, filter.OutputBinding(), tile_rows);
        MaterializeSink sink(&per_morsel[m]);
        filter.set_downstream(&project);
        project.set_downstream(&sink);

        ExecCtx ctx{&core, &env.dpu->dms(), &env.dpu->params(),
                    env.vectorized, env.cancel};
        Status st = filter.Open(ctx);
        if (st.ok()) st = project.Open(ctx);
        if (st.ok()) st = sink.Open(ctx);
        if (st.ok() && range.begin < range.end) {
          st = RelationAccessor::PushColumnSet(ctx, input, col_indices,
                                               range.begin, range.end,
                                               tile_rows, &filter);
        }
        core.dmem().Reset();
        return st;
      }));

  StepOutput& out = env.outputs[static_cast<size_t>(id_)];
  out.partitioned = false;
  out.set = ColumnSet(metas);
  for (const ColumnSet& cs : per_morsel) {
    for (size_t col = 0; col < metas.size(); ++col) {
      if (cs.num_rows() > 0) out.set.meta(col) = cs.meta(col);
    }
  }
  for (ColumnSet& cs : per_morsel) out.set.Append(cs);
  return Status::OK();
}

std::string PipeStep::Describe() const {
  std::ostringstream os;
  os << "PIPE #" << input_ << " preds=" << predicates_.size()
     << " proj=" << projections_.size() << " tile=" << tile_rows_;
  return os.str();
}

// ---- PartitionStep ---------------------------------------------------------

Status PartitionStep::Execute(ExecEnv& env) const {
  const StepOutput& in = env.outputs[static_cast<size_t>(input_)];
  if (in.partitioned) {
    return Status::InvalidArgument("input is already partitioned");
  }
  std::vector<size_t> key_cols;
  for (const std::string& name : key_columns_) {
    RAPID_ASSIGN_OR_RETURN(size_t idx, FindColumn(in.set, name));
    key_cols.push_back(idx);
  }
  // Checkpointed rounds (from a failed earlier attempt) are consumed
  // by PartitionExec; only the remaining rounds execute — and are
  // charged as workload volume.
  PartitionProgress* progress =
      env.progress != nullptr ? &(*env.progress)[static_cast<size_t>(id_)]
                                     .partition
                              : nullptr;
  size_t reused = 0;
  if (progress != nullptr && progress->CompatibleWith(scheme_)) {
    reused = static_cast<size_t>(progress->rounds_done);
  }
  env.counters.partitioned_rows +=
      in.set.num_rows() * (scheme_.rounds.size() - reused);
  env.reused_rounds += reused;
  RAPID_ASSIGN_OR_RETURN(
      PartitionedData parts,
      PartitionExec::Execute(*env.dpu, in.set, key_cols, scheme_, tile_rows_,
                             env.cancel, progress));
  StepOutput& out = env.outputs[static_cast<size_t>(id_)];
  out.partitioned = true;
  out.parts = std::move(parts);
  return Status::OK();
}

std::string PartitionStep::Describe() const {
  std::ostringstream os;
  os << "PARTITION #" << input_ << " keys=(";
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    os << (i ? "," : "") << key_columns_[i];
  }
  os << ") scheme=";
  for (size_t r = 0; r < scheme_.rounds.size(); ++r) {
    os << (r ? "x" : "") << scheme_.rounds[r].fanout;
    if (scheme_.rounds[r].hw_fanout > 1) {
      os << "(hw" << scheme_.rounds[r].hw_fanout << ")";
    }
  }
  return os.str();
}

// ---- JoinStep --------------------------------------------------------------

Status JoinStep::Execute(ExecEnv& env) const {
  const StepOutput& build_in = env.outputs[static_cast<size_t>(build_input_)];
  const StepOutput& probe_in = env.outputs[static_cast<size_t>(probe_input_)];
  if (!build_in.partitioned || !probe_in.partitioned) {
    return Status::InvalidArgument("join inputs must be partitioned");
  }
  if (build_in.parts.partitions.empty() || probe_in.parts.partitions.empty()) {
    return Status::InvalidArgument("join inputs are empty");
  }
  const ColumnSet& bproto = build_in.parts.partitions[0];
  const ColumnSet& pproto = probe_in.parts.partitions[0];

  JoinSpec spec = spec_template_;
  spec.type = type_;
  spec.vectorized = env.vectorized;
  for (const std::string& k : build_keys_) {
    RAPID_ASSIGN_OR_RETURN(size_t idx, FindColumn(bproto, k));
    spec.build_keys.push_back(idx);
  }
  for (const std::string& k : probe_keys_) {
    RAPID_ASSIGN_OR_RETURN(size_t idx, FindColumn(pproto, k));
    spec.probe_keys.push_back(idx);
  }
  // Output columns resolve against build first, then probe, and are
  // emitted in request order (matching the host engine's ordering).
  for (const std::string& name : output_columns_) {
    auto b = bproto.IndexOf(name);
    if (b.ok() && type_ != JoinType::kSemi && type_ != JoinType::kAnti) {
      spec.outputs.push_back(JoinSpec::Output{true, b.value()});
      continue;
    }
    auto p = pproto.IndexOf(name);
    if (p.ok()) {
      spec.outputs.push_back(JoinSpec::Output{false, p.value()});
      continue;
    }
    return Status::NotFound("join output column '" + name + "' not found");
  }

  RAPID_ASSIGN_OR_RETURN(
      ColumnSet merged,
      JoinExec::Execute(*env.dpu, build_in.parts, probe_in.parts, spec,
                        &last_stats, env.cancel));
  env.counters.join_build_rows += last_stats.build_rows;
  env.counters.join_probe_rows += last_stats.probe_rows;
  StepOutput& out = env.outputs[static_cast<size_t>(id_)];
  out.partitioned = false;
  out.set = std::move(merged);
  return Status::OK();
}

std::string JoinStep::Describe() const {
  std::ostringstream os;
  os << "HASHJOIN build=#" << build_input_ << " probe=#" << probe_input_
     << " keys=(";
  for (size_t i = 0; i < build_keys_.size(); ++i) {
    os << (i ? "," : "") << build_keys_[i] << "=" << probe_keys_[i];
  }
  os << ")";
  switch (type_) {
    case JoinType::kInner:
      os << " inner";
      break;
    case JoinType::kSemi:
      os << " semi";
      break;
    case JoinType::kAnti:
      os << " anti";
      break;
    case JoinType::kLeftOuter:
      os << " left-outer";
      break;
  }
  return os.str();
}

// ---- PipelineStep ----------------------------------------------------------

std::vector<int> PipelineStep::Inputs() const {
  std::vector<int> in;
  if (input_ >= 0) in.push_back(input_);
  for (const PipelineStageSpec& s : stages_) {
    if (s.kind == PipelineStageSpec::Kind::kProbe) {
      in.push_back(s.build_input);
    } else if (s.join_filter.enabled()) {
      in.push_back(s.join_filter.build_step);
    }
  }
  return in;
}

void PipelineStep::RemapInputs(const std::vector<int>& old_to_new) {
  if (input_ >= 0) input_ = old_to_new[static_cast<size_t>(input_)];
  for (PipelineStageSpec& s : stages_) {
    if (s.kind == PipelineStageSpec::Kind::kProbe) {
      s.build_input = old_to_new[static_cast<size_t>(s.build_input)];
    } else if (s.join_filter.enabled()) {
      s.join_filter.build_step =
          old_to_new[static_cast<size_t>(s.join_filter.build_step)];
    }
  }
}

namespace {

// Per-stage execution info resolved once (shared by all cores).
struct ResolvedStage {
  const PipelineStageSpec* spec = nullptr;
  ColumnBinding in_binding;                // stage input: name -> tile pos
  std::vector<std::string> pass_through;   // kFilterProject
  ProbeOpSpec probe;                       // kProbe
};

}  // namespace

Status PipelineStep::Execute(ExecEnv& env) const {
  if (stages_.empty() ||
      stages_.front().kind != PipelineStageSpec::Kind::kFilterProject) {
    return Status::InvalidArgument(
        "pipeline step needs a leading filter/project stage");
  }
  const bool table_source = !table_.empty();

  // ---- Resolve the source: binding + metadata of the incoming columns.
  const storage::Table* table = nullptr;
  const ColumnSet* input_set = nullptr;
  std::vector<const storage::Chunk*> all_chunks;
  std::vector<size_t> col_indices;
  std::vector<int> target_scales;
  ColumnBinding binding;
  std::unordered_map<std::string, ColumnMeta> avail;  // name -> meta
  size_t src_width = 0;

  if (table_source) {
    auto table_it = env.catalog->find(table_);
    if (table_it == env.catalog->end()) {
      return Status::NotFound("table '" + table_ + "' not loaded");
    }
    table = &table_it->second;
    for (size_t c = 0; c < base_columns_.size(); ++c) {
      RAPID_ASSIGN_OR_RETURN(size_t idx,
                             table->schema().IndexOf(base_columns_[c]));
      col_indices.push_back(idx);
      target_scales.push_back(table->stats(idx).dsb_scale);
      binding[base_columns_[c]] = c;
      ColumnMeta m;
      m.name = base_columns_[c];
      m.type = table->schema().field(idx).type;
      m.dsb_scale = table->stats(idx).dsb_scale;
      m.dict = table->dictionary(idx);
      avail[m.name] = m;
      src_width += storage::WidthOf(m.type);
    }
    for (size_t p = 0; p < table->num_partitions(); ++p) {
      const storage::Partition& part = table->partition(p);
      for (size_t c = 0; c < part.num_chunks(); ++c) {
        all_chunks.push_back(&part.chunk(c));
      }
    }
    size_t scan_rows = 0;
    for (const storage::Chunk* chunk : all_chunks) {
      scan_rows += chunk->num_rows();
    }
    env.counters.scanned_rows += scan_rows;
    env.counters.scanned_bytes += scan_rows * src_width;
  } else {
    const StepOutput& in = env.outputs[static_cast<size_t>(input_)];
    if (in.partitioned) {
      return Status::InvalidArgument(
          "pipeline step needs an unpartitioned input");
    }
    input_set = &in.set;
    for (size_t c = 0; c < input_set->num_columns(); ++c) {
      binding[input_set->meta(c).name] = c;
      col_indices.push_back(c);
      avail[input_set->meta(c).name] = input_set->meta(c);
    }
    src_width = 8 * input_set->num_columns();
    env.counters.scanned_rows += input_set->num_rows();
    env.counters.scanned_bytes += input_set->num_rows() * src_width;
  }

  // Join-filter pushdown survives fusion: the absorbed scan's ref
  // rides on stage 0. Build once (shared, read-only) and hand every
  // core's stage-0 FilterOp the augmented predicate list.
  primitives::BlockedBloomFilter join_bloom;
  std::vector<Predicate> stage0_predicates = stages_.front().predicates;
  if (BuildJoinFilter(env, stages_.front().join_filter, &join_bloom)) {
    stage0_predicates.push_back(
        Predicate::Bloom(stages_.front().join_filter.probe_column,
                         &join_bloom,
                         stages_.front().join_filter.selectivity));
  }

  // ---- Walk the stages, resolving bindings and output metadata.
  std::vector<ResolvedStage> resolved;
  std::vector<ColumnMeta> metas;  // metas of the running stage output
  ColumnBinding cur_binding = binding;
  size_t chain_row_bytes = 2 * src_width;  // accessor double buffer
  size_t num_probe_stages = 0;

  for (const PipelineStageSpec& stage : stages_) {
    ResolvedStage rs;
    rs.spec = &stage;
    rs.in_binding = cur_binding;
    if (stage.kind == PipelineStageSpec::Kind::kFilterProject) {
      rs.pass_through = ProjectionInputs(stage.projections);
      metas = ProjectionMetas(stage.projections);
      for (size_t c = 0; c < stage.projections.size(); ++c) {
        const Expr& expr = *stage.projections[c].second;
        if (expr.kind == Expr::Kind::kColumn) {
          auto it = avail.find(expr.column);
          if (it != avail.end()) {
            metas[c].type = it->second.type;
            metas[c].dsb_scale = it->second.dsb_scale;
            metas[c].dict = it->second.dict;
          }
        }
      }
      chain_row_bytes += 8 * (rs.pass_through.size() +
                              stage.projections.size()) + 8;
    } else {
      ++num_probe_stages;
      const StepOutput& bout =
          env.outputs[static_cast<size_t>(stage.build_input)];
      if (bout.partitioned) {
        return Status::InvalidArgument(
            "pipelined probe needs an unpartitioned build input");
      }
      const ColumnSet& bset = bout.set;
      rs.probe.build = &bset;
      rs.probe.type = stage.join_type;
      rs.probe.tile_rows = stage.join_spec.tile_rows;
      rs.probe.bucket_reduction = stage.join_spec.bucket_reduction;
      rs.probe.dmem_capacity_rows = stage.join_spec.dmem_capacity_rows;
      for (const std::string& k : stage.build_keys) {
        RAPID_ASSIGN_OR_RETURN(size_t idx, bset.IndexOf(k));
        rs.probe.build_keys.push_back(idx);
      }
      for (const std::string& k : stage.probe_keys) {
        auto it = cur_binding.find(k);
        if (it == cur_binding.end()) {
          return Status::NotFound("probe key '" + k + "' not in pipeline");
        }
        rs.probe.probe_keys.push_back(it->second);
      }
      metas.clear();
      for (const std::string& name : stage.output_columns) {
        auto b = bset.IndexOf(name);
        if (b.ok() && stage.join_type != JoinType::kSemi &&
            stage.join_type != JoinType::kAnti) {
          rs.probe.outputs.push_back(ProbeOpSpec::Output{true, b.value()});
          metas.push_back(bset.meta(b.value()));
          continue;
        }
        auto p = cur_binding.find(name);
        if (p != cur_binding.end()) {
          rs.probe.outputs.push_back(ProbeOpSpec::Output{false, p->second});
          ColumnMeta m;
          m.name = name;
          auto it = avail.find(name);
          if (it != avail.end()) m = it->second;
          metas.push_back(m);
          continue;
        }
        return Status::NotFound("pipeline output column '" + name +
                                "' not found");
      }
      env.counters.join_build_rows += bset.num_rows();
      chain_row_bytes += 8 * stage.output_columns.size() + 8;
    }
    // Stage output becomes the next stage's input.
    cur_binding.clear();
    avail.clear();
    for (size_t c = 0; c < metas.size(); ++c) {
      cur_binding[metas[c].name] = c;
      avail[metas[c].name] = metas[c];
    }
    resolved.push_back(std::move(rs));
  }

  // ---- Tile size: the whole chain's working set shares the 32 KiB
  // scratchpad; probe stages additionally reserve room for their DMEM
  // hash tables (their Open() degrades capacity to what is left).
  size_t budget = env.dpu->config().dmem_bytes;
  if (num_probe_stages > 0) budget /= 2;
  const size_t tile_rows = FitTileRows(tile_rows_, chain_row_bytes, budget);

  const int num_cores = env.dpu->num_cores();
  const size_t n_input = table_source ? 0 : input_set->num_rows();

  // Morsels: one per chunk for table sources (weighted by row count),
  // contiguous row ranges otherwise. Outputs are indexed by morsel id,
  // so the merge order — and therefore the result — is independent of
  // the core assignment and the core count.
  std::vector<RowRange> ranges;
  std::vector<double> weights;
  if (table_source) {
    weights.reserve(all_chunks.size());
    for (const storage::Chunk* chunk : all_chunks) {
      weights.push_back(static_cast<double>(chunk->num_rows()));
    }
  } else {
    ranges = RowMorsels(n_input, num_cores);
    weights = RangeWeights(ranges);
  }
  const size_t num_morsels = table_source ? all_chunks.size() : ranges.size();
  std::vector<ColumnSet> per_morsel(num_morsels, ColumnSet(metas));

  // Mid-pipeline resume: a failed earlier attempt left completed
  // morsel slots (the per-morsel high-water mark) in the checkpoint.
  // Reclaim them and skip those morsels below — slots of morsels that
  // had not finished stay freshly constructed, discarding any
  // partially written output from the failed attempt. The morsel
  // decomposition is a deterministic function of the input, so slot
  // indices line up across attempts.
  StepProgress* sp = env.progress != nullptr
                         ? &(*env.progress)[static_cast<size_t>(id_)]
                         : nullptr;
  std::vector<uint8_t> morsel_done(num_morsels, 0);
  if (sp != nullptr && sp->has_morsels &&
      sp->per_morsel.size() == num_morsels &&
      sp->morsel_done.size() == num_morsels) {
    size_t resumed = 0;
    for (size_t m = 0; m < num_morsels; ++m) {
      if (sp->morsel_done[m] == 0) continue;
      per_morsel[m] = std::move(sp->per_morsel[m]);
      morsel_done[m] = 1;
      weights[m] = 0;  // nothing left to schedule for this morsel
      ++resumed;
    }
    env.resumed_morsels += resumed;
  }
  if (sp != nullptr) {
    sp->per_morsel.clear();
    sp->morsel_done.clear();
    sp->has_morsels = false;
  }

  // A core's fused chain (with its resident broadcast hash tables) is
  // built lazily on the first morsel the core pulls and reused for the
  // rest: the build cost is paid once per participating core, exactly
  // as with the static per-core split. Per-morsel accessor buffers
  // stack on top of the chain state and are truncated between morsels.
  struct CoreChain {
    std::vector<std::unique_ptr<PipelineOp>> ops;
    bool opened = false;
    Status open_status;
    size_t dmem_mark = 0;
  };
  std::vector<CoreChain> chains(static_cast<size_t>(num_cores));

  dpu::WorkQueue queue(std::move(weights), num_cores);
  const Status loop_status = env.dpu->ParallelForMorsels(
      queue, env.cancel, [&](dpu::DpCore& core, size_t m) -> Status {
        if (morsel_done[m] != 0) return Status::OK();  // resumed slot
        TraceSpan span(TraceMode::kFull, core.id(), "pipeline.morsel",
                       &dpu::TraceClockNow, &core.cycles());
        span.Annotate("morsel", static_cast<int64_t>(m));
        CoreChain& chain = chains[static_cast<size_t>(core.id())];
        ExecCtx ctx{&core, &env.dpu->dms(), &env.dpu->params(),
                    env.vectorized, env.cancel};
        if (!chain.opened) {
          chain.opened = true;
          core.dmem().Reset();
          for (size_t s = 0; s < resolved.size(); ++s) {
            const ResolvedStage& rs = resolved[s];
            if (rs.spec->kind == PipelineStageSpec::Kind::kFilterProject) {
              auto filter = std::make_unique<FilterOp>(
                  s == 0 ? stage0_predicates : rs.spec->predicates,
                  rs.pass_through, rs.in_binding, tile_rows,
                  s == 0 && use_rid_list_);
              auto project = std::make_unique<ProjectOp>(
                  rs.spec->projections, filter->OutputBinding(), tile_rows);
              chain.ops.push_back(std::move(filter));
              chain.ops.push_back(std::move(project));
            } else {
              ProbeOpSpec pspec = rs.probe;
              pspec.tile_rows = tile_rows;
              chain.ops.push_back(
                  std::make_unique<HashJoinProbeOp>(std::move(pspec)));
            }
          }
          for (size_t i = 0; i + 1 < chain.ops.size(); ++i) {
            chain.ops[i]->set_downstream(chain.ops[i + 1].get());
          }
          Status st = Status::OK();
          for (auto& op : chain.ops) {
            if (st.ok()) st = op->Open(ctx);
          }
          chain.open_status = st;
          chain.dmem_mark = core.dmem().used();
        }
        RAPID_RETURN_NOT_OK(chain.open_status);
        core.dmem().TruncateTo(chain.dmem_mark);

        MaterializeSink sink(&per_morsel[m]);
        chain.ops.back()->set_downstream(&sink);
        Status st = sink.Open(ctx);
        if (st.ok()) {
          if (table_source) {
            const std::vector<const storage::Chunk*> mine{all_chunks[m]};
            st = RelationAccessor::PushChunks(ctx, mine, col_indices,
                                              target_scales, tile_rows,
                                              chain.ops.front().get());
          } else if (ranges[m].begin < ranges[m].end) {
            st = RelationAccessor::PushColumnSet(ctx, *input_set, col_indices,
                                                 ranges[m].begin,
                                                 ranges[m].end, tile_rows,
                                                 chain.ops.front().get());
          }
        }
        // High-water mark: the slot holds this morsel's complete
        // output. Distinct workers write distinct bytes, so the bitmap
        // needs no synchronization beyond the phase barrier.
        if (st.ok()) morsel_done[m] = 1;
        return st;
      });
  if (!loop_status.ok()) {
    // Checkpoint the completed slots so a retry resumes after the
    // high-water mark instead of demoting the whole step. Morsels
    // in flight when the abort landed either finished (their done bit
    // is set, output complete) or never ran — partially written slots
    // are never marked done. Cancellation checkpoints nothing.
    if (sp != nullptr && !loop_status.IsCancellation()) {
      sp->per_morsel = std::move(per_morsel);
      sp->morsel_done = std::move(morsel_done);
      sp->has_morsels = true;
    }
    for (int c = 0; c < num_cores; ++c) env.dpu->core(c).dmem().Reset();
    return loop_status;
  }
  for (int c = 0; c < num_cores; ++c) env.dpu->core(c).dmem().Reset();

  // Join statistics accumulate per chain; sums are assignment-independent.
  std::vector<JoinStats> core_join_stats(static_cast<size_t>(num_cores));
  for (size_t c = 0; c < chains.size(); ++c) {
    for (const auto& op : chains[c].ops) {
      if (const auto* probe =
              dynamic_cast<const HashJoinProbeOp*>(op.get())) {
        const JoinStats& js = probe->stats();
        JoinStats& agg = core_join_stats[c];
        agg.build_rows += js.build_rows;
        agg.probe_rows += js.probe_rows;
        agg.matches += js.matches;
        agg.chain_steps += js.chain_steps;
        agg.overflow_steps += js.overflow_steps;
        agg.overflowed_partitions += js.overflowed_partitions;
      }
    }
  }

  last_join_stats = JoinStats{};
  for (const JoinStats& js : core_join_stats) {
    last_join_stats.build_rows += js.build_rows;
    last_join_stats.probe_rows += js.probe_rows;
    last_join_stats.matches += js.matches;
    last_join_stats.chain_steps += js.chain_steps;
    last_join_stats.overflow_steps += js.overflow_steps;
    last_join_stats.overflowed_partitions += js.overflowed_partitions;
  }
  env.counters.join_probe_rows += last_join_stats.probe_rows;

  StepOutput& out = env.outputs[static_cast<size_t>(id_)];
  out.partitioned = false;
  out.set = ColumnSet(metas);
  for (const ColumnSet& cs : per_morsel) {
    for (size_t col = 0; col < metas.size(); ++col) {
      if (cs.num_rows() > 0) out.set.meta(col) = cs.meta(col);
    }
  }
  for (ColumnSet& cs : per_morsel) out.set.Append(cs);
  return Status::OK();
}

std::string PipelineStep::Describe() const {
  std::ostringstream os;
  os << "PIPELINE ";
  if (!table_.empty()) {
    os << "scan " << table_;
  } else {
    os << "#" << input_;
  }
  for (const PipelineStageSpec& s : stages_) {
    if (s.kind == PipelineStageSpec::Kind::kFilterProject) {
      os << " | filter+project preds=" << s.predicates.size()
         << " proj=" << s.projections.size();
      if (s.join_filter.enabled()) {
        os << " joinfilter=#" << s.join_filter.build_step << "("
           << s.join_filter.probe_column << ")";
      }
    } else {
      os << " | probe build=#" << s.build_input << " keys=(";
      for (size_t i = 0; i < s.build_keys.size(); ++i) {
        os << (i ? "," : "") << s.build_keys[i] << "=" << s.probe_keys[i];
      }
      os << ")";
      switch (s.join_type) {
        case JoinType::kInner:
          os << " inner";
          break;
        case JoinType::kSemi:
          os << " semi";
          break;
        case JoinType::kAnti:
          os << " anti";
          break;
        case JoinType::kLeftOuter:
          os << " left-outer";
          break;
      }
    }
  }
  os << " tile=" << tile_rows_ << (use_rid_list_ ? " rid" : " bv");
  return os.str();
}

// ---- GroupByStep -----------------------------------------------------------

Status GroupByStep::ExecuteLowNdv(ExecEnv& env, const ColumnSet& input,
                                  ColumnSet* out) const {
  ColumnBinding binding;
  std::vector<size_t> col_indices;
  for (size_t c = 0; c < input.num_columns(); ++c) {
    binding[input.meta(c).name] = c;
    col_indices.push_back(c);
  }
  std::vector<ExprPtr> key_exprs;
  for (const auto& [name, expr] : keys_) key_exprs.push_back(expr);

  const int num_cores = env.dpu->num_cores();
  const size_t n = input.num_rows();
  const std::vector<RowRange> ranges = RowMorsels(n, num_cores);
  // One partial aggregate per morsel. Folding them in morsel order
  // reproduces global first-appearance group order: a group's slot is
  // fixed by the earliest range containing it, independent of range
  // boundaries or which core aggregated which range.
  std::vector<std::unique_ptr<GroupByOp>> ops(ranges.size());
  for (auto& op : ops) {
    op = std::make_unique<GroupByOp>(key_exprs, aggs_, binding);
  }
  const size_t bytes_per_row =
      8 * (2 * col_indices.size() + keys_.size() + aggs_.size());
  const size_t tile_rows = FitTileRows(
      tile_rows_, bytes_per_row, env.dpu->config().dmem_bytes);

  // On-the-fly aggregation over each morsel of the input.
  dpu::WorkQueue queue(RangeWeights(ranges), num_cores);
  RAPID_RETURN_NOT_OK(env.dpu->ParallelForMorsels(
      queue, env.cancel, [&](dpu::DpCore& core, size_t m) -> Status {
        TraceSpan span(TraceMode::kFull, core.id(), "groupby.morsel",
                       &dpu::TraceClockNow, &core.cycles());
        span.Annotate("morsel", static_cast<int64_t>(m));
        const RowRange& range = ranges[m];
        core.dmem().Reset();
        ExecCtx ctx{&core, &env.dpu->dms(), &env.dpu->params(),
                    env.vectorized, env.cancel};
        Status st = ops[m]->Open(ctx);
        if (st.ok() && range.begin < range.end) {
          st = RelationAccessor::PushColumnSet(ctx, input, col_indices,
                                               range.begin, range.end,
                                               tile_rows, ops[m].get());
        }
        core.dmem().Reset();
        return st;
      }));

  // Merge operator: fold per-morsel tables (aggregated data, low
  // overhead) in morsel order, charged to core 0.
  const std::vector<AggFunc> funcs = ops[0]->funcs();
  for (size_t m = 1; m < ops.size(); ++m) {
    ops[0]->table().MergeFrom(ops[m]->table(), funcs);
    env.dpu->core(0).cycles().ChargeCompute(
        env.dpu->params().groupby_cycles_per_row *
        static_cast<double>(ops[m]->table().num_groups()));
  }
  return ops[0]->EmitInto(out);
}

Status GroupByStep::ExecuteHighNdv(ExecEnv& env, const PartitionedData& input,
                                   ColumnSet* out) const {
  if (input.partitions.empty()) {
    return Status::InvalidArgument("group-by input has no partitions");
  }
  const ColumnSet& proto = input.partitions[0];
  ColumnBinding binding;
  std::vector<size_t> col_indices;
  for (size_t c = 0; c < proto.num_columns(); ++c) {
    binding[proto.meta(c).name] = c;
    col_indices.push_back(c);
  }
  std::vector<ExprPtr> key_exprs;
  for (const auto& [name, expr] : keys_) key_exprs.push_back(expr);

  // Distinct groups live in disjoint partitions (partitioned on the
  // group keys), so per-partition tables concatenate with no merge.
  const size_t num_parts = input.partitions.size();
  std::vector<ColumnSet> partials(num_parts, ColumnSet(out->metas()));
  const size_t bytes_per_row =
      8 * (2 * col_indices.size() + keys_.size() + aggs_.size());
  const size_t tile_rows = FitTileRows(
      tile_rows_, bytes_per_row, env.dpu->config().dmem_bytes);
  // Key column indices, for runtime re-partitioning of oversized
  // partitions (keys are plain columns on the high-NDV path).
  std::vector<size_t> key_cols;
  bool keys_plain = !keys_.empty();
  for (const auto& [name, expr] : keys_) {
    if (expr->kind != Expr::Kind::kColumn) {
      keys_plain = false;
      break;
    }
    auto idx = proto.IndexOf(expr->column);
    if (!idx.ok()) {
      keys_plain = false;
      break;
    }
    key_cols.push_back(idx.value());
  }

  std::atomic<uint64_t> repartitions{0};
  // One morsel per partition, weighted by row count: LPT seeding
  // starts the heavy (skewed) partitions first and stealing absorbs
  // whatever imbalance remains.
  std::vector<double> part_weights;
  part_weights.reserve(num_parts);
  for (const ColumnSet& part : input.partitions) {
    part_weights.push_back(static_cast<double>(part.num_rows()));
  }
  dpu::WorkQueue queue(std::move(part_weights), env.dpu->num_cores());
  RAPID_RETURN_NOT_OK(env.dpu->ParallelForMorsels(
      queue, env.cancel, [&](dpu::DpCore& core, size_t p) -> Status {
        TraceSpan span(TraceMode::kFull, core.id(), "groupby.partition",
                       &dpu::TraceClockNow, &core.cycles());
        span.Annotate("partition", static_cast<int64_t>(p));
        // Aggregates one ColumnSet into `agg_out` on this core.
        auto aggregate = [&](const ColumnSet& part,
                             ColumnSet* agg_out) -> Status {
          core.dmem().Reset();
          GroupByOp op(key_exprs, aggs_, binding);
          ExecCtx ctx{&core, &env.dpu->dms(), &env.dpu->params(),
                      env.vectorized, env.cancel};
          RAPID_RETURN_NOT_OK(op.Open(ctx));
          RAPID_RETURN_NOT_OK(RelationAccessor::PushColumnSet(
              ctx, part, col_indices, 0, part.num_rows(), tile_rows, &op));
          RAPID_RETURN_NOT_OK(op.EmitInto(agg_out));
          core.dmem().Reset();
          return Status::OK();
        };

        const ColumnSet& part = input.partitions[p];
        // Runtime re-partition (Section 5.4): if this partition exceeds
        // the estimate, its hash table would spill DMEM — split it
        // further before aggregating. Sub-partitions hold disjoint keys,
        // so their outputs concatenate.
        if (max_partition_rows_ > 0 && keys_plain &&
            part.num_rows() > max_partition_rows_ &&
            input.bits_used + 1 < 32) {
          size_t extra = 2;
          while (extra * max_partition_rows_ < part.num_rows() &&
                 extra < 256) {
            extra *= 2;
          }
          auto sub = PartitionExec::Repartition(
              core, env.dpu->params(), part, key_cols,
              static_cast<int>(extra), input.bits_used, tile_rows);
          if (sub.ok()) {
            repartitions.fetch_add(1);
            for (const ColumnSet& sub_part : sub.value()) {
              RAPID_RETURN_NOT_OK(aggregate(sub_part, &partials[p]));
            }
            return Status::OK();
          }
        }
        return aggregate(part, &partials[p]);
      }));
  env.counters.groupby_repartitions += repartitions.load();
  for (ColumnSet& cs : partials) {
    for (size_t col = 0; col < out->num_columns(); ++col) {
      if (cs.num_rows() > 0) out->meta(col) = cs.meta(col);
    }
    out->Append(cs);
  }
  return Status::OK();
}

Status GroupByStep::Execute(ExecEnv& env) const {
  const StepOutput& in = env.outputs[static_cast<size_t>(input_)];

  std::vector<ColumnMeta> metas;
  const ColumnSet& meta_source =
      in.partitioned ? (in.parts.partitions.empty()
                            ? in.set
                            : in.parts.partitions[0])
                     : in.set;
  for (const auto& [name, expr] : keys_) {
    ColumnMeta m;
    m.name = name;
    if (expr->kind == Expr::Kind::kColumn) {
      auto idx = meta_source.IndexOf(expr->column);
      if (idx.ok()) {
        m.type = meta_source.meta(idx.value()).type;
        m.dict = meta_source.meta(idx.value()).dict;
      }
    }
    metas.push_back(m);
  }
  for (const AggSpec& a : aggs_) {
    ColumnMeta m;
    m.name = a.name;
    metas.push_back(m);
  }
  ColumnSet result(metas);

  if (in.partitioned) {
    for (const ColumnSet& p : in.parts.partitions) {
      env.counters.agg_rows += p.num_rows();
    }
  } else {
    env.counters.agg_rows += in.set.num_rows();
  }

  if (low_ndv_) {
    if (in.partitioned) {
      return Status::InvalidArgument("low-NDV group-by takes a flat input");
    }
    RAPID_RETURN_NOT_OK(ExecuteLowNdv(env, in.set, &result));
  } else {
    if (!in.partitioned) {
      return Status::InvalidArgument(
          "high-NDV group-by needs a partitioned input");
    }
    RAPID_RETURN_NOT_OK(ExecuteHighNdv(env, in.parts, &result));
  }

  StepOutput& out = env.outputs[static_cast<size_t>(id_)];
  out.partitioned = false;
  out.set = std::move(result);
  return Status::OK();
}

std::string GroupByStep::Describe() const {
  std::ostringstream os;
  os << "GROUPBY #" << input_ << (low_ndv_ ? " low-ndv" : " high-ndv")
     << " keys=" << keys_.size() << " aggs=" << aggs_.size();
  return os.str();
}

// ---- Sort / TopK / SetOp / Window ------------------------------------------

Result<std::vector<SortKey>> ResolveSortKeys(
    const ColumnSet& set,
    const std::vector<std::pair<std::string, bool>>& keys) {
  std::vector<SortKey> out;
  for (const auto& [name, asc] : keys) {
    RAPID_ASSIGN_OR_RETURN(size_t idx, set.IndexOf(name));
    out.push_back(SortKey{idx, asc});
  }
  return out;
}

Status SortStep::Execute(ExecEnv& env) const {
  const StepOutput& in = env.outputs[static_cast<size_t>(input_)];
  env.counters.sorted_rows += in.set.num_rows();
  RAPID_ASSIGN_OR_RETURN(std::vector<SortKey> keys,
                         ResolveSortKeys(in.set, keys_));
  RAPID_ASSIGN_OR_RETURN(ColumnSet sorted,
                         SortExec::Execute(*env.dpu, in.set, keys));
  StepOutput& out = env.outputs[static_cast<size_t>(id_)];
  out.partitioned = false;
  out.set = std::move(sorted);
  return Status::OK();
}

std::string SortStep::Describe() const {
  std::ostringstream os;
  os << "SORT #" << input_ << " keys=" << keys_.size();
  return os.str();
}

Status TopKStep::Execute(ExecEnv& env) const {
  const StepOutput& in = env.outputs[static_cast<size_t>(input_)];
  env.counters.sorted_rows += in.set.num_rows();
  RAPID_ASSIGN_OR_RETURN(std::vector<SortKey> keys,
                         ResolveSortKeys(in.set, keys_));
  RAPID_ASSIGN_OR_RETURN(ColumnSet top,
                         TopKExec::Execute(*env.dpu, in.set, keys, k_));
  StepOutput& out = env.outputs[static_cast<size_t>(id_)];
  out.partitioned = false;
  out.set = std::move(top);
  return Status::OK();
}

std::string TopKStep::Describe() const {
  std::ostringstream os;
  os << "TOPK #" << input_ << " k=" << k_;
  return os.str();
}

Status SetOpStep::Execute(ExecEnv& env) const {
  const StepOutput& l = env.outputs[static_cast<size_t>(left_)];
  const StepOutput& r = env.outputs[static_cast<size_t>(right_)];
  RAPID_ASSIGN_OR_RETURN(ColumnSet result,
                         SetOpExec::Execute(*env.dpu, kind_, l.set, r.set));
  StepOutput& out = env.outputs[static_cast<size_t>(id_)];
  out.partitioned = false;
  out.set = std::move(result);
  return Status::OK();
}

std::string SetOpStep::Describe() const {
  const char* name = kind_ == SetOpKind::kUnion
                         ? "UNION"
                         : kind_ == SetOpKind::kIntersect ? "INTERSECT"
                                                          : "MINUS";
  std::ostringstream os;
  os << name << " #" << left_ << " #" << right_;
  return os.str();
}

Status WindowStep::Execute(ExecEnv& env) const {
  const StepOutput& in = env.outputs[static_cast<size_t>(input_)];
  std::vector<WindowSpec> specs;
  for (const LogicalWindow& w : windows_) {
    WindowSpec spec;
    spec.func = w.func;
    spec.output_name = w.output_name;
    for (const std::string& name : w.partition_by) {
      RAPID_ASSIGN_OR_RETURN(size_t idx, in.set.IndexOf(name));
      spec.partition_by.push_back(idx);
    }
    for (const auto& [name, asc] : w.order_by) {
      RAPID_ASSIGN_OR_RETURN(size_t idx, in.set.IndexOf(name));
      spec.order_by.push_back(SortKey{idx, asc});
    }
    if (!w.value_column.empty()) {
      RAPID_ASSIGN_OR_RETURN(spec.value_column,
                             in.set.IndexOf(w.value_column));
    }
    specs.push_back(std::move(spec));
  }
  RAPID_ASSIGN_OR_RETURN(ColumnSet result,
                         WindowExec::Execute(*env.dpu, in.set, specs));
  StepOutput& out = env.outputs[static_cast<size_t>(id_)];
  out.partitioned = false;
  out.set = std::move(result);
  return Status::OK();
}

std::string WindowStep::Describe() const {
  std::ostringstream os;
  os << "WINDOW #" << input_ << " funcs=" << windows_.size();
  return os.str();
}

}  // namespace rapid::core
