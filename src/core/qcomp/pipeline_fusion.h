// Pipeline fusion (QComp post-pass).
//
// Rewrites a lowered PhysicalPlan, grouping maximal runs of
// pipeline-safe steps — scan, filter, project and small-build
// hash-join probes — into fused PipelineSteps that execute as a single
// ParallelFor round with the whole operator chain DMEM-resident.
// Pipeline breakers (join build, partition, group-by, sort, set ops,
// windows) remain barriers.
//
// Fusion rules:
//   * Scan -> Pipe chains fuse when every intermediate step has exactly
//     one consumer (its output is never re-read).
//   * A partitioned join collapses into a broadcast probe stage when
//     the estimated build side is small (<= max_build_rows and no
//     larger than the probe side): both PartitionSteps and the
//     JoinStep disappear, the build producer stays materialized, and
//     each dpCore builds a private DMEM hash table over it.
//   * A candidate chain is only fused if task formation's MaxTileRows
//     confirms the whole chain's working set fits the DMEM budget at
//     some tile size.

#ifndef RAPID_CORE_QCOMP_PIPELINE_FUSION_H_
#define RAPID_CORE_QCOMP_PIPELINE_FUSION_H_

#include <string>
#include <unordered_map>

#include "core/qcomp/steps.h"
#include "dpu/config.h"
#include "dpu/cost_model.h"
#include "storage/table.h"

namespace rapid::core {

// Returns the fused plan (steps renumbered 0..n-1 in execution order).
// `max_build_rows` gates broadcast-probe fusion; 0 disables probe
// fusion but still fuses scan/filter/project chains. `params` supplies
// the per-row rates (including SIMD throughput multipliers) used in
// the gate's task-formation profiles. `catalog` (optional) lets the
// gate budget DMEM for the encoded scan path's run-staging buffers on
// compressed base columns; without it the gate assumes plain tiles.
Result<PhysicalPlan> FusePipelines(
    PhysicalPlan plan, const dpu::DpuConfig& config, size_t max_build_rows,
    const dpu::CostParams& params,
    const std::unordered_map<std::string, storage::Table>* catalog = nullptr);

}  // namespace rapid::core

#endif  // RAPID_CORE_QCOMP_PIPELINE_FUSION_H_
