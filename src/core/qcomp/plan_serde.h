// Logical-plan serialization (Section 3.1).
//
// The host's code generator "generates, serializes and stores a RAPID
// QEP in the place holder node"; RAPID nodes instantiate the received
// plan. This module provides that wire format: a compact s-expression
// encoding of logical plans (expressions, predicates — including
// dictionary-code bitmaps — and every operator kind), plus the parser
// the execution node runs. The RAPID placeholder operator round-trips
// plans through it, so the wire path is exercised on every offloaded
// query.

#ifndef RAPID_CORE_QCOMP_PLAN_SERDE_H_
#define RAPID_CORE_QCOMP_PLAN_SERDE_H_

#include <string>

#include "core/qcomp/logical_plan.h"

namespace rapid::core {

// Serializes a logical plan to the wire format.
std::string SerializePlan(const LogicalPtr& plan);

// Parses a plan back. Fails with InvalidArgument on malformed input.
Result<LogicalPtr> ParsePlan(const std::string& text);

// Expression/predicate helpers (exposed for tests).
std::string SerializeExpr(const Expr& expr);
Result<ExprPtr> ParseExpr(const std::string& text);

}  // namespace rapid::core

#endif  // RAPID_CORE_QCOMP_PLAN_SERDE_H_
