#include "core/qcomp/logical_plan.h"

namespace rapid::core {

LogicalPtr LogicalNode::Scan(std::string table,
                             std::vector<std::string> columns,
                             std::vector<Predicate> predicates) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = Kind::kScan;
  n->table = std::move(table);
  n->columns = std::move(columns);
  n->predicates = std::move(predicates);
  return n;
}

LogicalPtr LogicalNode::Filter(LogicalPtr input,
                               std::vector<Predicate> predicates,
                               std::vector<std::string> columns) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = Kind::kFilter;
  n->input = std::move(input);
  n->predicates = std::move(predicates);
  n->columns = std::move(columns);
  return n;
}

LogicalPtr LogicalNode::Project(
    LogicalPtr input, std::vector<std::pair<std::string, ExprPtr>> projections) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = Kind::kProject;
  n->input = std::move(input);
  n->projections = std::move(projections);
  return n;
}

LogicalPtr LogicalNode::Join(LogicalPtr left, LogicalPtr right,
                             std::vector<std::string> left_keys,
                             std::vector<std::string> right_keys,
                             std::vector<std::string> output_columns,
                             JoinType type) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = Kind::kJoin;
  n->input = std::move(left);
  n->right = std::move(right);
  n->left_keys = std::move(left_keys);
  n->right_keys = std::move(right_keys);
  n->output_columns = std::move(output_columns);
  n->join_type = type;
  return n;
}

LogicalPtr LogicalNode::GroupBy(
    LogicalPtr input, std::vector<std::pair<std::string, ExprPtr>> keys,
    std::vector<AggSpec> aggregates) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = Kind::kGroupBy;
  n->input = std::move(input);
  n->group_keys = std::move(keys);
  n->aggregates = std::move(aggregates);
  return n;
}

LogicalPtr LogicalNode::Sort(LogicalPtr input,
                             std::vector<std::pair<std::string, bool>> keys) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = Kind::kSort;
  n->input = std::move(input);
  n->sort_keys = std::move(keys);
  return n;
}

LogicalPtr LogicalNode::TopK(LogicalPtr input,
                             std::vector<std::pair<std::string, bool>> keys,
                             size_t k) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = Kind::kTopK;
  n->input = std::move(input);
  n->sort_keys = std::move(keys);
  n->limit = k;
  return n;
}

LogicalPtr LogicalNode::SetOp(SetOpKind kind, LogicalPtr left,
                              LogicalPtr right) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = Kind::kSetOp;
  n->setop = kind;
  n->input = std::move(left);
  n->right = std::move(right);
  return n;
}

LogicalPtr LogicalNode::Window(LogicalPtr input,
                               std::vector<LogicalWindow> windows) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = Kind::kWindow;
  n->input = std::move(input);
  n->windows = std::move(windows);
  return n;
}

}  // namespace rapid::core
