// Physical plan steps: the executable form of a RAPID QEP.
//
// QComp lowers the logical tree into a DAG of steps. A step is a
// *task* in the paper's sense (Section 5.2): a group of pipelined
// operators executed without preemption, materializing only at its
// boundary. Steps reference their inputs by step id; the engine
// executes them in order and keeps each step's output (a DRAM
// ColumnSet, or a set of partitions for partitioning steps).

#ifndef RAPID_CORE_QCOMP_STEPS_H_
#define RAPID_CORE_QCOMP_STEPS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "core/expr.h"
#include "core/ops/groupby_op.h"
#include "core/ops/join_exec.h"
#include "core/ops/partition_exec.h"
#include "core/ops/setop_exec.h"
#include "core/ops/sort_exec.h"
#include "core/ops/window_exec.h"
#include "core/qcomp/logical_plan.h"
#include "core/qef/column_set.h"
#include "dpu/dpu.h"
#include "storage/table.h"

namespace rapid::core {

struct StepOutput {
  ColumnSet set;
  PartitionedData parts;
  bool partitioned = false;
};

// Workload volume counters accumulated across steps; the benchmark
// harness feeds these into the System-X-on-Xeon analytical model for
// the performance/watt comparison (Figure 14).
struct WorkloadCounters {
  uint64_t scanned_rows = 0;
  uint64_t groupby_repartitions = 0;  // runtime re-partitions (§5.4)
  uint64_t scanned_bytes = 0;
  uint64_t partitioned_rows = 0;
  uint64_t join_build_rows = 0;
  uint64_t join_probe_rows = 0;
  uint64_t agg_rows = 0;
  uint64_t sorted_rows = 0;
};

// Mid-step state salvaged from a failed attempt, indexed by step id
// (ExecEnv::progress). An in-place retry of the same plan resumes
// from it instead of recomputing:
//  - PartitionStep keeps completed partition rounds (buckets +
//    carried hash columns) and restarts at the failed round;
//  - PipelineStep keeps its morsel-id-indexed output slots plus a
//    per-morsel done bitmap — the high-water mark — and skips
//    completed morsels on the next attempt.
// Both resumes are bit-identical to from-scratch runs because morsel
// decomposition and round reassembly are deterministic.
struct StepProgress {
  PartitionProgress partition;
  std::vector<ColumnSet> per_morsel;
  std::vector<uint8_t> morsel_done;  // 1 = slot holds a completed morsel
  bool has_morsels = false;

  bool empty() const { return partition.empty() && !has_morsels; }
  void clear() {
    partition.clear();
    per_morsel.clear();
    morsel_done.clear();
    has_morsels = false;
  }
};

struct ExecEnv {
  dpu::Dpu* dpu = nullptr;
  const std::unordered_map<std::string, storage::Table>* catalog = nullptr;
  bool vectorized = true;
  // Query-level cancellation token (may be null); steps thread it into
  // every per-core ExecCtx and check it at barrier boundaries.
  const CancelToken* cancel = nullptr;
  std::vector<StepOutput> outputs;  // indexed by step id
  WorkloadCounters counters;
  // Checkpoint slots, indexed by step id (null = checkpointing off).
  // Steps consume their slot on entry and refill it on failure; the
  // engine moves surviving slots into the query's FragmentCheckpoint.
  std::vector<StepProgress>* progress = nullptr;
  // Reuse accounting for the current attempt: partition rounds skipped
  // via checkpoints and fused-pipeline morsels skipped via resume.
  // Written single-threaded at step boundaries.
  uint64_t reused_rounds = 0;
  uint64_t resumed_morsels = 0;
};

class PlanStep {
 public:
  explicit PlanStep(int id) : id_(id) {}
  virtual ~PlanStep() = default;

  virtual Status Execute(ExecEnv& env) const = 0;
  virtual std::string Describe() const = 0;

  // Step ids of this step's inputs (empty for base-table sources).
  // The pipeline-fusion pass uses this to count consumers and rewrite
  // the plan.
  virtual std::vector<int> Inputs() const { return {}; }
  // Rewrites input step ids through old_to_new (indexed by old id)
  // after the fusion pass renumbers the plan.
  virtual void RemapInputs(const std::vector<int>& old_to_new) {
    (void)old_to_new;
  }

  int id() const { return id_; }
  void set_id(int id) { id_ = id; }

 protected:
  int id_;
};

struct PhysicalPlan {
  std::vector<std::unique_ptr<PlanStep>> steps;
  int root = -1;

  // Logical-subtree path -> id of the step whose output materializes
  // exactly that subtree's rows. Paths are "" for the root, then one
  // character per level: '0' descends to the input/left child, '1' to
  // the right. A path suffixed with "#p" addresses the *partition
  // rounds* of that subtree's output (join build/probe and high-NDV
  // group-by partition steps) — partitioned intermediates checkpoint
  // under these addresses so retries and replans can find them; the
  // suffix never reaches the host-side path walker. Recorded by the
  // planner, remapped by pipeline fusion (entries whose step was
  // absorbed into the middle of a pipeline are dropped). The engine
  // uses this to key checkpointed fragments for in-place DPU retries,
  // demotion replans and the host fallback.
  std::vector<std::pair<std::string, int>> subtree_steps;

  std::string Describe() const;
};

// ---- Step implementations --------------------------------------------------

// Sideways information passing (join-filter pushdown): the planner
// attaches one of these to the probe-side scan of a hash join when
// the build side is small enough that a blocked Bloom filter over its
// keys pays for itself. The scan builds the filter from the build
// step's materialized output and evaluates it as an extra predicate
// inside the fused tile loop, dropping pruned rows before
// partitioning and payload materialization.
//
// The ref is attached whenever the rewrite is structurally eligible
// and the cost gate passes — independent of the RAPID_JOIN_FILTER
// runtime gate — so the plan SHAPE (step inputs, fusion decisions,
// DMEM layout) is identical with the gate off or on; only the runtime
// build/evaluate is gated (core/join_filter.h).
struct JoinFilterRef {
  int build_step = -1;       // step producing the build-side output
  std::string build_key;     // key column in the build output schema
  std::string probe_column;  // probed column in the scan's base schema
  double est_build_ndv = 0;  // planner NDV estimate (sizes the filter)
  double selectivity = 0.5;  // estimated pass rate incl. false positives

  bool enabled() const { return build_step >= 0; }
};

// Base-table scan task: relation accessor -> filter -> project,
// pipelined through DMEM, materializing to a ColumnSet.
class ScanStep : public PlanStep {
 public:
  ScanStep(int id, std::string table, std::vector<std::string> base_columns,
           std::vector<Predicate> predicates,
           std::vector<std::pair<std::string, ExprPtr>> projections,
           size_t tile_rows, bool use_rid_list)
      : PlanStep(id),
        table_(std::move(table)),
        base_columns_(std::move(base_columns)),
        predicates_(std::move(predicates)),
        projections_(std::move(projections)),
        tile_rows_(tile_rows),
        use_rid_list_(use_rid_list) {}

  Status Execute(ExecEnv& env) const override;
  std::string Describe() const override;
  std::vector<int> Inputs() const override {
    if (join_filter_.enabled()) return {join_filter_.build_step};
    return {};
  }
  void RemapInputs(const std::vector<int>& old_to_new) override {
    if (join_filter_.enabled()) {
      join_filter_.build_step =
          old_to_new[static_cast<size_t>(join_filter_.build_step)];
    }
  }

  const std::string& table() const { return table_; }
  const std::vector<std::string>& base_columns() const {
    return base_columns_;
  }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  const std::vector<std::pair<std::string, ExprPtr>>& projections() const {
    return projections_;
  }
  size_t tile_rows() const { return tile_rows_; }
  bool use_rid_list() const { return use_rid_list_; }
  void set_join_filter(JoinFilterRef ref) { join_filter_ = std::move(ref); }
  const JoinFilterRef& join_filter() const { return join_filter_; }

 private:
  std::string table_;
  std::vector<std::string> base_columns_;  // columns read from the table
  std::vector<Predicate> predicates_;      // ordered most-selective-first
  std::vector<std::pair<std::string, ExprPtr>> projections_;
  size_t tile_rows_;
  bool use_rid_list_;
  JoinFilterRef join_filter_;  // disabled unless the planner pushed one
};

// Same pipeline over a DRAM intermediate (e.g. filtering/projecting a
// join result).
class PipeStep : public PlanStep {
 public:
  PipeStep(int id, int input, std::vector<Predicate> predicates,
           std::vector<std::pair<std::string, ExprPtr>> projections,
           size_t tile_rows)
      : PlanStep(id),
        input_(input),
        predicates_(std::move(predicates)),
        projections_(std::move(projections)),
        tile_rows_(tile_rows) {}

  Status Execute(ExecEnv& env) const override;
  std::string Describe() const override;
  std::vector<int> Inputs() const override { return {input_}; }
  void RemapInputs(const std::vector<int>& old_to_new) override {
    input_ = old_to_new[static_cast<size_t>(input_)];
  }

  int input() const { return input_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  const std::vector<std::pair<std::string, ExprPtr>>& projections() const {
    return projections_;
  }
  size_t tile_rows() const { return tile_rows_; }

 private:
  int input_;
  std::vector<Predicate> predicates_;
  std::vector<std::pair<std::string, ExprPtr>> projections_;
  size_t tile_rows_;
};

class PartitionStep : public PlanStep {
 public:
  PartitionStep(int id, int input, std::vector<std::string> key_columns,
                PartitionScheme scheme, size_t tile_rows)
      : PlanStep(id),
        input_(input),
        key_columns_(std::move(key_columns)),
        scheme_(std::move(scheme)),
        tile_rows_(tile_rows) {}

  Status Execute(ExecEnv& env) const override;
  std::string Describe() const override;
  std::vector<int> Inputs() const override { return {input_}; }
  void RemapInputs(const std::vector<int>& old_to_new) override {
    input_ = old_to_new[static_cast<size_t>(input_)];
  }

  int input() const { return input_; }

 private:
  int input_;
  std::vector<std::string> key_columns_;
  PartitionScheme scheme_;
  size_t tile_rows_;
};

class JoinStep : public PlanStep {
 public:
  JoinStep(int id, int build_input, int probe_input,
           std::vector<std::string> build_keys,
           std::vector<std::string> probe_keys,
           std::vector<std::string> output_columns, JoinType type,
           JoinSpec spec_template)
      : PlanStep(id),
        build_input_(build_input),
        probe_input_(probe_input),
        build_keys_(std::move(build_keys)),
        probe_keys_(std::move(probe_keys)),
        output_columns_(std::move(output_columns)),
        type_(type),
        spec_template_(std::move(spec_template)) {}

  Status Execute(ExecEnv& env) const override;
  std::string Describe() const override;
  std::vector<int> Inputs() const override {
    return {build_input_, probe_input_};
  }
  void RemapInputs(const std::vector<int>& old_to_new) override {
    build_input_ = old_to_new[static_cast<size_t>(build_input_)];
    probe_input_ = old_to_new[static_cast<size_t>(probe_input_)];
  }

  int build_input() const { return build_input_; }
  int probe_input() const { return probe_input_; }
  const std::vector<std::string>& build_keys() const { return build_keys_; }
  const std::vector<std::string>& probe_keys() const { return probe_keys_; }
  const std::vector<std::string>& output_columns() const {
    return output_columns_;
  }
  JoinType type() const { return type_; }
  const JoinSpec& spec_template() const { return spec_template_; }

  // Stats of the last execution (skew handling introspection).
  mutable JoinStats last_stats;

 private:
  int build_input_;
  int probe_input_;
  std::vector<std::string> build_keys_;
  std::vector<std::string> probe_keys_;
  std::vector<std::string> output_columns_;
  JoinType type_;
  JoinSpec spec_template_;
};

class GroupByStep : public PlanStep {
 public:
  GroupByStep(int id, int input, bool low_ndv,
              std::vector<std::pair<std::string, ExprPtr>> keys,
              std::vector<AggSpec> aggs, size_t tile_rows,
              size_t max_partition_rows = 0)
      : PlanStep(id),
        input_(input),
        low_ndv_(low_ndv),
        keys_(std::move(keys)),
        aggs_(std::move(aggs)),
        tile_rows_(tile_rows),
        max_partition_rows_(max_partition_rows) {}

  Status Execute(ExecEnv& env) const override;
  std::string Describe() const override;
  std::vector<int> Inputs() const override { return {input_}; }
  void RemapInputs(const std::vector<int>& old_to_new) override {
    input_ = old_to_new[static_cast<size_t>(input_)];
  }

 private:
  Status ExecuteLowNdv(ExecEnv& env, const ColumnSet& input,
                       ColumnSet* out) const;
  Status ExecuteHighNdv(ExecEnv& env, const PartitionedData& input,
                        ColumnSet* out) const;

  int input_;
  bool low_ndv_;
  std::vector<std::pair<std::string, ExprPtr>> keys_;
  std::vector<AggSpec> aggs_;
  size_t tile_rows_;
  // Runtime re-partition threshold for the high-NDV strategy
  // (Section 5.4: partitions larger than the estimate are
  // re-partitioned as needed so hash tables fit DMEM). 0 = off.
  size_t max_partition_rows_;
};

class SortStep : public PlanStep {
 public:
  SortStep(int id, int input, std::vector<std::pair<std::string, bool>> keys)
      : PlanStep(id), input_(input), keys_(std::move(keys)) {}

  Status Execute(ExecEnv& env) const override;
  std::string Describe() const override;
  std::vector<int> Inputs() const override { return {input_}; }
  void RemapInputs(const std::vector<int>& old_to_new) override {
    input_ = old_to_new[static_cast<size_t>(input_)];
  }

 private:
  int input_;
  std::vector<std::pair<std::string, bool>> keys_;
};

class TopKStep : public PlanStep {
 public:
  TopKStep(int id, int input, std::vector<std::pair<std::string, bool>> keys,
           size_t k)
      : PlanStep(id), input_(input), keys_(std::move(keys)), k_(k) {}

  Status Execute(ExecEnv& env) const override;
  std::string Describe() const override;
  std::vector<int> Inputs() const override { return {input_}; }
  void RemapInputs(const std::vector<int>& old_to_new) override {
    input_ = old_to_new[static_cast<size_t>(input_)];
  }

 private:
  int input_;
  std::vector<std::pair<std::string, bool>> keys_;
  size_t k_;
};

class SetOpStep : public PlanStep {
 public:
  SetOpStep(int id, SetOpKind kind, int left, int right)
      : PlanStep(id), kind_(kind), left_(left), right_(right) {}

  Status Execute(ExecEnv& env) const override;
  std::string Describe() const override;
  std::vector<int> Inputs() const override { return {left_, right_}; }
  void RemapInputs(const std::vector<int>& old_to_new) override {
    left_ = old_to_new[static_cast<size_t>(left_)];
    right_ = old_to_new[static_cast<size_t>(right_)];
  }

 private:
  SetOpKind kind_;
  int left_;
  int right_;
};

class WindowStep : public PlanStep {
 public:
  WindowStep(int id, int input, std::vector<LogicalWindow> windows)
      : PlanStep(id), input_(input), windows_(std::move(windows)) {}

  Status Execute(ExecEnv& env) const override;
  std::string Describe() const override;
  std::vector<int> Inputs() const override { return {input_}; }
  void RemapInputs(const std::vector<int>& old_to_new) override {
    input_ = old_to_new[static_cast<size_t>(input_)];
  }

 private:
  int input_;
  std::vector<LogicalWindow> windows_;
};

// One stage of a fused pipeline (see PipelineStep).
struct PipelineStageSpec {
  enum class Kind { kFilterProject, kProbe };
  Kind kind = Kind::kFilterProject;

  // kFilterProject: ordered predicates + projection expressions,
  // exactly the payload of a ScanStep/PipeStep. `join_filter` (stage 0
  // only) carries a pushed-down Bloom-filter ref from the absorbed
  // ScanStep; the fused tile loop evaluates it after the ordinary
  // predicates.
  std::vector<Predicate> predicates;
  std::vector<std::pair<std::string, ExprPtr>> projections;
  JoinFilterRef join_filter;

  // kProbe: a broadcast hash-join probe. `build_input` is the step id
  // producing the unpartitioned build side; each core builds a private
  // DMEM table over it and streams probe tiles through.
  int build_input = -1;
  std::vector<std::string> build_keys;
  std::vector<std::string> probe_keys;
  std::vector<std::string> output_columns;
  JoinType join_type = JoinType::kInner;
  JoinSpec join_spec;
};

// A fused run of pipeline-safe steps (scan/filter/project/probe),
// executed as ONE ParallelFor round: every dpCore streams its share of
// input tiles through the whole operator chain DMEM-resident — one DMS
// load per input tile, one DMS store per output tile, no intermediate
// ColumnSet and no per-step barrier. Pipeline breakers (join build,
// partition, group-by, sort) stay separate steps.
class PipelineStep : public PlanStep {
 public:
  // Source is either a base table (`!table.empty()`, input == -1) or a
  // materialized intermediate (`input` >= 0). The first stage must be
  // kFilterProject; stages[i]'s output feeds stages[i+1].
  PipelineStep(int id, std::string table, std::vector<std::string> base_columns,
               int input, std::vector<PipelineStageSpec> stages,
               size_t tile_rows, bool use_rid_list)
      : PlanStep(id),
        table_(std::move(table)),
        base_columns_(std::move(base_columns)),
        input_(input),
        stages_(std::move(stages)),
        tile_rows_(tile_rows),
        use_rid_list_(use_rid_list) {}

  Status Execute(ExecEnv& env) const override;
  std::string Describe() const override;
  std::vector<int> Inputs() const override;
  void RemapInputs(const std::vector<int>& old_to_new) override;

  const std::vector<PipelineStageSpec>& stages() const { return stages_; }
  size_t tile_rows() const { return tile_rows_; }

  // Aggregated probe stats of the last execution (all probe stages,
  // all cores).
  mutable JoinStats last_join_stats;

 private:
  std::string table_;
  std::vector<std::string> base_columns_;
  int input_;
  std::vector<PipelineStageSpec> stages_;
  size_t tile_rows_;
  bool use_rid_list_;
};

// Shared helpers.
Result<std::vector<SortKey>> ResolveSortKeys(
    const ColumnSet& set, const std::vector<std::pair<std::string, bool>>& keys);

}  // namespace rapid::core

#endif  // RAPID_CORE_QCOMP_STEPS_H_
