// QComp cost estimation (Section 5.2).
//
// "Running on bare-metal without an operating system, RAPID has all
// the resources under complete control. Hence, the cost model is
// quite deterministic and accurate." Costs are analytically modeled
// on top of the calibrated data-transfer and compute cost functions
// in dpu/cost_model.h, considering the overlap between the two.
// The host's offload planner (hostdb/) uses these estimates to take
// cost-based offload decisions.

#ifndef RAPID_CORE_QCOMP_COST_MODEL_H_
#define RAPID_CORE_QCOMP_COST_MODEL_H_

#include <cstddef>

#include "dpu/config.h"
#include "dpu/cost_model.h"
#include "dpu/work_queue.h"

namespace rapid::core {

class CostEstimator {
 public:
  CostEstimator(const dpu::DpuConfig& config, const dpu::CostParams& params)
      : config_(config), params_(params) {}

  // Skew knob for the balanced-makespan estimate: the largest single
  // morsel's share of a phase's total cycles. 0 (default) models
  // perfectly balanced morsels (cycles / num_cores, the old
  // round-robin assumption); larger fractions grow every estimate by
  // the remainder a straggler morsel adds even under work stealing.
  void set_largest_morsel_fraction(double fraction) {
    largest_morsel_fraction_ = fraction < 0 ? 0 : fraction;
  }
  double largest_morsel_fraction() const { return largest_morsel_fraction_; }

  // Scan + filter over `rows` rows of `row_bytes` each with
  // `num_predicates` conjuncts at `selectivity` combined selectivity:
  // transfer and compute overlap (double buffering), work spread over
  // all cores. `compression_ratio` (plain bytes / encoded bytes, >= 1)
  // models the encoded scan path: the DMS moves row_bytes /
  // compression_ratio and the cores pay the RLE expansion rate on top
  // of the filter.
  double ScanSeconds(size_t rows, size_t row_bytes, size_t num_predicates,
                     double selectivity, double compression_ratio = 1.0) const;

  // Partitioned hash join: `rounds` partition passes over both inputs
  // plus build and probe kernels.
  double JoinSeconds(size_t build_rows, size_t probe_rows, size_t row_bytes,
                     size_t rounds) const;

  // Net modeled seconds SAVED by pushing a build-side Bloom filter
  // into the probe-side scan (sideways information passing). Balances
  // the filter's cost (per-core build over `build_rows` inserts plus
  // one probe per probe row) against the partition/build/probe work
  // the pruned rows no longer pay: probe rows shrink by
  // (1 - pass_rate) where pass_rate = selectivity + fpr. Positive
  // means the pushdown pays for itself; the planner attaches the ref
  // iff this is > 0, independent of the RAPID_JOIN_FILTER gate.
  double JoinFilterSeconds(size_t build_rows, size_t probe_rows,
                           size_t row_bytes, size_t rounds,
                           double selectivity, double fpr) const;

  // Group-by over `rows` with `groups` distinct groups; the low-NDV
  // strategy adds a merge of per-core tables.
  double GroupBySeconds(size_t rows, size_t groups, size_t num_aggs,
                        bool low_ndv) const;

  double SortSeconds(size_t rows, size_t key_bytes) const;

  const dpu::DpuConfig& config() const { return config_; }

 private:
  // Balanced-makespan division (Graham bound) instead of assuming the
  // static round-robin split is perfect: total/cores plus the
  // remainder contributed by the largest morsel.
  double PerCore(double cycles) const {
    return dpu::BalancedMakespanCycles(cycles,
                                       cycles * largest_morsel_fraction_,
                                       config_.num_cores) /
           params_.clock_hz;
  }

  dpu::DpuConfig config_;
  dpu::CostParams params_;
  double largest_morsel_fraction_ = 0.0;
};

}  // namespace rapid::core

#endif  // RAPID_CORE_QCOMP_COST_MODEL_H_
