// Task formation and DMEM sharing (Section 5.2, Figure 4).
//
// A task is a group of physical operators executed together without
// preemption: operators inside a task pipeline tiles through DMEM and
// only task boundaries materialize to DRAM. More operators per task
// means less materialization but smaller vectors (DMEM is shared);
// fewer operators per task allow larger vectors. The optimizer
// enumerates contiguous groupings of the operator chain, computes the
// largest feasible vector size for each task under the 32 KiB DMEM
// budget, costs every candidate and picks the cheapest.

#ifndef RAPID_CORE_QCOMP_TASK_FORMATION_H_
#define RAPID_CORE_QCOMP_TASK_FORMATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "dpu/cost_model.h"

namespace rapid::core {

// DMEM profile of one operator, declared at implementation time
// ("each RAPID operator declares its internal state and data structure
// sizes").
struct OpProfile {
  std::string name;
  size_t state_bytes = 0;      // fixed internal state
  size_t bytes_per_row = 8;    // DMEM per tile row (input+output vectors)
  double output_ratio = 1.0;   // rows out per row in (selectivity etc.)
  size_t output_row_bytes = 8; // width of a materialized output row
  // dpCore compute per input row, already divided by the SIMD
  // throughput multiplier of the operator's kernel family
  // (CostParams::simd). 0 models a transfer-bound operator; with all
  // profiles at 0 FormationCycles degenerates to the pure-transfer
  // model, so existing callers are unchanged.
  double cycles_per_row = 0.0;
};

struct TaskGroup {
  size_t first_op = 0;  // inclusive
  size_t last_op = 0;   // inclusive
  size_t tile_rows = 64;
};

struct TaskFormation {
  std::vector<TaskGroup> tasks;
  double cycles = 0;  // modeled materialization + per-tile overhead cost
};

// Enumerates groupings of the operator chain and returns the cheapest
// formation. `input_rows`/`input_row_bytes` describe the task chain's
// base input; `dmem_bytes` is the per-core scratchpad budget.
// `num_cores`/`largest_morsel_fraction` select the balanced-makespan
// division of each task's work (sum/cores + largest-morsel remainder);
// the defaults reproduce the single-core (undivided) cost, so existing
// callers are unchanged.
Result<TaskFormation> FormTasks(const std::vector<OpProfile>& ops,
                                size_t dmem_bytes, size_t input_rows,
                                size_t input_row_bytes,
                                const dpu::CostParams& params,
                                int num_cores = 1,
                                double largest_morsel_fraction = 0.0);

// Cost of one specific grouping (exposed for the Figure 4 benchmark).
Result<double> FormationCycles(const std::vector<OpProfile>& ops,
                               const std::vector<TaskGroup>& tasks,
                               size_t input_rows, size_t input_row_bytes,
                               const dpu::CostParams& params,
                               int num_cores = 1,
                               double largest_morsel_fraction = 0.0);

// Largest tile size (power of two, >= 64) such that the ops in
// [first, last] fit the DMEM budget together, or an error if even the
// minimum tile does not fit.
Result<size_t> MaxTileRows(const std::vector<OpProfile>& ops, size_t first,
                           size_t last, size_t dmem_bytes);

}  // namespace rapid::core

#endif  // RAPID_CORE_QCOMP_TASK_FORMATION_H_
