// Logical query plans handed to RAPID's QComp (Section 5.2).
//
// The host database performs logical optimization (operator ordering,
// rewrites); RAPID QComp receives the logical tree and makes the
// *physical* decisions: operator variants, primitive selection,
// partitioning schemes, task formation and DMEM allocation.

#ifndef RAPID_CORE_QCOMP_LOGICAL_PLAN_H_
#define RAPID_CORE_QCOMP_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/expr.h"
#include "core/ops/groupby_op.h"
#include "core/ops/join_exec.h"
#include "core/ops/setop_exec.h"
#include "core/ops/window_exec.h"

namespace rapid::core {

struct LogicalNode;
using LogicalPtr = std::shared_ptr<LogicalNode>;

// Window clause with column *names* (resolved to indices at planning).
struct LogicalWindow {
  WindowFunc func = WindowFunc::kRowNumber;
  std::vector<std::string> partition_by;
  std::vector<std::pair<std::string, bool>> order_by;  // name, ascending
  std::string value_column;
  std::string output_name = "win";
};

struct LogicalNode {
  enum class Kind {
    kScan,
    kFilter,   // standalone filter over an intermediate (e.g. HAVING)
    kProject,
    kJoin,
    kGroupBy,
    kSort,
    kTopK,
    kSetOp,
    kWindow,
  };

  Kind kind = Kind::kScan;

  // Children (kScan has none; kJoin/kSetOp have two; others one).
  LogicalPtr input;
  LogicalPtr right;

  // kScan.
  std::string table;
  std::vector<Predicate> predicates;
  std::vector<std::string> columns;  // columns to produce

  // kProject.
  std::vector<std::pair<std::string, ExprPtr>> projections;

  // kJoin. Output columns name columns from either side.
  JoinType join_type = JoinType::kInner;
  std::vector<std::string> left_keys;
  std::vector<std::string> right_keys;
  std::vector<std::string> output_columns;

  // kGroupBy.
  std::vector<std::pair<std::string, ExprPtr>> group_keys;
  std::vector<AggSpec> aggregates;

  // kSort / kTopK.
  std::vector<std::pair<std::string, bool>> sort_keys;  // name, ascending
  size_t limit = 0;

  // kSetOp.
  SetOpKind setop = SetOpKind::kUnion;

  // kWindow.
  std::vector<LogicalWindow> windows;

  // ---- Builders ----
  static LogicalPtr Scan(std::string table, std::vector<std::string> columns,
                         std::vector<Predicate> predicates = {});
  // Filters an intermediate result, keeping `columns` (all input
  // columns if empty).
  static LogicalPtr Filter(LogicalPtr input, std::vector<Predicate> predicates,
                           std::vector<std::string> columns = {});
  static LogicalPtr Project(
      LogicalPtr input,
      std::vector<std::pair<std::string, ExprPtr>> projections);
  static LogicalPtr Join(LogicalPtr left, LogicalPtr right,
                         std::vector<std::string> left_keys,
                         std::vector<std::string> right_keys,
                         std::vector<std::string> output_columns,
                         JoinType type = JoinType::kInner);
  static LogicalPtr GroupBy(
      LogicalPtr input, std::vector<std::pair<std::string, ExprPtr>> keys,
      std::vector<AggSpec> aggregates);
  static LogicalPtr Sort(LogicalPtr input,
                         std::vector<std::pair<std::string, bool>> keys);
  static LogicalPtr TopK(LogicalPtr input,
                         std::vector<std::pair<std::string, bool>> keys,
                         size_t k);
  static LogicalPtr SetOp(SetOpKind kind, LogicalPtr left, LogicalPtr right);
  static LogicalPtr Window(LogicalPtr input,
                           std::vector<LogicalWindow> windows);
};

}  // namespace rapid::core

#endif  // RAPID_CORE_QCOMP_LOGICAL_PLAN_H_
