// Result decoding and formatting.
//
// RAPID results are fixed-width encoded (dictionary codes, DSB
// mantissas, day numbers). In the paper, decoding happens in the
// host's RAPID operator as post-processing (Section 3.2); this module
// is that decode step: it renders cells through the column metadata —
// dictionary pointers propagated by the planner, DSB scales recorded
// by the operators, and date types from the schema.

#ifndef RAPID_CORE_RESULT_FORMAT_H_
#define RAPID_CORE_RESULT_FORMAT_H_

#include <string>

#include "core/qef/column_set.h"

namespace rapid::core {

// Renders one cell: dictionary codes decode to their strings, decimals
// to fixed-point text at their DSB scale, dates to YYYY-MM-DD,
// integers to digits.
std::string FormatCell(const ColumnSet& set, size_t row, size_t col);

// Renders the whole result as an aligned text table (header + up to
// `max_rows` rows); the host-side pretty printer used by the examples.
std::string FormatTable(const ColumnSet& set, size_t max_rows = 20);

}  // namespace rapid::core

#endif  // RAPID_CORE_RESULT_FORMAT_H_
