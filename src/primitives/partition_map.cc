#include "primitives/partition_map.h"

#include "common/logging.h"

namespace rapid::primitives {

void ComputePartitionMap(const uint32_t* hashes, size_t n, int fanout,
                         int shift, PartitionMap* map) {
  RAPID_CHECK(fanout > 0 && (fanout & (fanout - 1)) == 0);
  const uint32_t mask = static_cast<uint32_t>(fanout) - 1;

  // Loop 1: partition id per row (branch-free).
  map->partition_of.resize(n);
  for (size_t i = 0; i < n; ++i) {
    map->partition_of[i] = static_cast<uint16_t>((hashes[i] >> shift) & mask);
  }

  // Loop 2: histogram.
  map->counts.assign(static_cast<size_t>(fanout), 0);
  for (size_t i = 0; i < n; ++i) {
    ++map->counts[map->partition_of[i]];
  }

  // Loop 3: prefix sum -> per-partition output offsets.
  map->offsets.assign(static_cast<size_t>(fanout) + 1, 0);
  for (int p = 0; p < fanout; ++p) {
    map->offsets[static_cast<size_t>(p) + 1] =
        map->offsets[static_cast<size_t>(p)] + map->counts[static_cast<size_t>(p)];
  }

  // Loop 4: scatter row ids into partition-grouped order.
  map->rids.resize(n);
  std::vector<uint32_t> cursor(map->offsets.begin(), map->offsets.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    map->rids[cursor[map->partition_of[i]]++] = static_cast<uint32_t>(i);
  }
}

}  // namespace rapid::primitives
