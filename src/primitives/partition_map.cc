#include "primitives/partition_map.h"

#include "common/logging.h"
#include "primitives/simd.h"

namespace rapid::primitives {

void ComputePartitionMap(const uint32_t* hashes, size_t n, int fanout,
                         int shift, PartitionMap* map) {
  RAPID_CHECK(fanout > 0 && (fanout & (fanout - 1)) == 0);
  const uint32_t mask = static_cast<uint32_t>(fanout) - 1;
  const simd::PartitionKernelTable& kernels = simd::partition_kernels();

  // Loop 1: partition id per row (branch-free, vectorized).
  map->partition_of.resize(n);
  kernels.partition_of(hashes, n, shift, mask, map->partition_of.data());

  // Loop 2: histogram.
  map->counts.assign(static_cast<size_t>(fanout), 0);
  kernels.histogram(map->partition_of.data(), n, map->counts.data(),
                    static_cast<size_t>(fanout));

  // Loop 3: prefix sum -> per-partition output offsets.
  map->offsets.assign(static_cast<size_t>(fanout) + 1, 0);
  for (int p = 0; p < fanout; ++p) {
    map->offsets[static_cast<size_t>(p) + 1] =
        map->offsets[static_cast<size_t>(p)] + map->counts[static_cast<size_t>(p)];
  }

  // Loop 4: scatter row ids into partition-grouped order. Stays
  // scalar: each store address depends on the running cursor of the
  // row's partition (the paper's Listing 2 scatter has the same
  // dependence; there is no conflict-free vector scatter for it).
  map->rids.resize(n);
  std::vector<uint32_t> cursor(map->offsets.begin(), map->offsets.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    map->rids[cursor[map->partition_of[i]]++] = static_cast<uint32_t>(i);
  }
}

void ComputePartitionIndex(const uint32_t* hashes, size_t n, int fanout,
                           int shift, uint16_t* partition_of,
                           uint32_t* counts) {
  RAPID_CHECK(fanout > 0 && (fanout & (fanout - 1)) == 0);
  const uint32_t mask = static_cast<uint32_t>(fanout) - 1;
  const simd::PartitionKernelTable& kernels = simd::partition_kernels();
  kernels.partition_of(hashes, n, shift, mask, partition_of);
  for (int p = 0; p < fanout; ++p) counts[p] = 0;
  kernels.histogram(partition_of, n, counts, static_cast<size_t>(fanout));
}

}  // namespace rapid::primitives
