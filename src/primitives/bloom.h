// Blocked Bloom filter for join-filter pushdown (sideways information
// passing). One key touches exactly one 64-byte block (a cache line /
// one DMEM word burst), setting one bit in each of the block's eight
// 64-bit lanes — the register-blocked design of Putze et al. as used
// by Impala/Kudu/Arrow.
//
// Hashing is the Mix64 family (common/mix64.h), deliberately
// independent of Crc32U64: CRC32 determines join bucket placement and
// partition fan-out, so reusing it would concentrate Bloom collisions
// on exactly the keys that already collide in the hash table. The
// Mix64 output is split: the high 32 bits select the block, the low
// 32 bits are salted per lane to pick the eight bit positions.
//
// Thread model: build is single-writer (one core builds the filter
// from the materialized build side); probes are lock-free concurrent
// reads. All probe tiers (scalar/SSE4.2/AVX2) compute the same exact
// integer function and are bit-identical.

#ifndef RAPID_PRIMITIVES_BLOOM_H_
#define RAPID_PRIMITIVES_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mix64.h"

namespace rapid::primitives {

// Lane salts (odd multipliers from Impala's blocked Bloom); the top 6
// bits of (h32 * salt) index one bit within the lane's 64-bit word.
inline constexpr uint32_t kBloomSalt[8] = {
    0x47b6137bu, 0x44974d91u, 0x8824ad5bu, 0xa2b7289du,
    0x705495c7u, 0x2df1424bu, 0x9efc4947u, 0x5c6bfb31u};

inline constexpr size_t kBloomLanes = 8;
inline constexpr size_t kBloomBlockBytes = kBloomLanes * sizeof(uint64_t);

// Block index for a mixed hash (block count is a power of two).
inline size_t BloomBlockIndex(uint64_t h, uint32_t block_mask) {
  return static_cast<size_t>(static_cast<uint32_t>(h >> 32) & block_mask);
}

// Sets the key's eight bits in `block` (8 lanes).
inline void BloomBlockSet(uint64_t* block, uint32_t h32) {
  for (size_t lane = 0; lane < kBloomLanes; ++lane) {
    const uint32_t pos = (h32 * kBloomSalt[lane]) >> 26;
    block[lane] |= uint64_t{1} << pos;
  }
}

// True iff all eight of the key's bits are set in `block`.
inline bool BloomBlockTest(const uint64_t* block, uint32_t h32) {
  uint64_t hit = 1;
  for (size_t lane = 0; lane < kBloomLanes; ++lane) {
    const uint32_t pos = (h32 * kBloomSalt[lane]) >> 26;
    hit &= block[lane] >> pos;
  }
  return (hit & 1) != 0;
}

class BlockedBloomFilter {
 public:
  // Power-of-two block count for `ndv` distinct keys under a byte
  // budget: targets ~8 keys per 512-bit block (≈3.5e-8 false-positive
  // rate at that load), clamped to `max_bytes`. Returns 0 when the
  // budget cannot hold even one block (caller skips the filter).
  static size_t BlocksForNdv(size_t ndv, size_t max_bytes);

  // Expected false-positive rate of a filter with `num_blocks` blocks
  // holding `ndv` keys (per-block Poisson fill model).
  static double EstimatedFpr(size_t ndv, size_t num_blocks);

  BlockedBloomFilter() = default;
  // `num_blocks` must be a power of two (as from BlocksForNdv).
  explicit BlockedBloomFilter(size_t num_blocks)
      : words_(num_blocks * kBloomLanes, 0),
        block_mask_(static_cast<uint32_t>(num_blocks - 1)) {}

  void Insert(uint64_t key) {
    const uint64_t h = Mix64(key);
    uint64_t* block = words_.data() + BloomBlockIndex(h, block_mask_) * kBloomLanes;
    BloomBlockSet(block, static_cast<uint32_t>(h));
  }

  bool MayContain(uint64_t key) const {
    const uint64_t h = Mix64(key);
    const uint64_t* block =
        words_.data() + BloomBlockIndex(h, block_mask_) * kBloomLanes;
    return BloomBlockTest(block, static_cast<uint32_t>(h));
  }

  size_t num_blocks() const { return words_.size() / kBloomLanes; }
  size_t bytes() const { return words_.size() * sizeof(uint64_t); }
  bool empty() const { return words_.empty(); }
  const uint64_t* blocks() const { return words_.data(); }
  uint32_t block_mask() const { return block_mask_; }

 private:
  // num_blocks * 8 lane words, block-major.
  std::vector<uint64_t> words_;
  uint32_t block_mask_ = 0;
};

}  // namespace rapid::primitives

#endif  // RAPID_PRIMITIVES_BLOOM_H_
