// Filter primitives (Section 5.4, Listing 1).
//
// Each primitive is a type-specialized, side-effect-free tight loop
// evaluating one predicate over a tile of column data. Mirroring the
// dpCore implementation, primitives come in two row-representation
// flavours:
//   * bit-vector: consume/produce a bit vector of qualifying rows
//     (the bvld/filteq loop of Listing 1), and
//   * RID-list: consume/produce a list of row offsets, chosen when
//     fewer than 1/32 of rows are expected to qualify.
//
// The C++ templates play the role of the paper's primitive generator
// framework: one template body is instantiated for every supported
// (operation, type) combination at compile time. Bodies dispatch to
// the SIMD kernel tables (simd.h) — the runtime stand-in for the
// dpCore's BVLD/FILT vector instructions — and every kernel tier
// writes whole BitVector words (never read-modify-write), so a
// BitVector reused across tiles of varying length can never leak
// stale bits.

#ifndef RAPID_PRIMITIVES_FILTER_H_
#define RAPID_PRIMITIVES_FILTER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "primitives/simd.h"

namespace rapid::primitives {

// ---- Bit-vector flavour ----------------------------------------------------

// out[i] = (values[i] op constant), for all rows of the tile.
template <CmpOp op, typename T>
void FilterConstBv(const T* values, size_t n, T constant, BitVector* out) {
  out->Resize(n);
  if (n == 0) return;
  if constexpr (simd::kHasKernelTables<T>) {
    simd::filter_kernels<T>().const_bv[static_cast<int>(op)](
        values, n, constant, out->mutable_words());
  } else {
    uint64_t* words = out->mutable_words();
    for (size_t i = 0; i < n; ++i) {
      const uint64_t bit = Compare<op, T>(values[i], constant) ? 1u : 0u;
      words[i >> 6] |= bit << (i & 63);
    }
  }
}

// Refines a previous predicate's bit vector: for rows whose bit is
// set, re-evaluate; others stay unqualified. This is the
// rpdmpr_bvflt loop of Listing 1 (bvld gathers the next qualifying
// value, filteq tests it); here the predicate word is computed
// vectorized and ANDed with the input word — identical bits, since
// kernel tail bits above n are zero exactly like MaskTail's invariant.
template <CmpOp op, typename T>
void FilterConstBvRefine(const T* values, size_t n, T constant,
                         const BitVector& in, BitVector* out) {
  FilterConstBv<op, T>(values, n, constant, out);
  uint64_t* words = out->mutable_words();
  const size_t num_words = out->num_words();
  const size_t shared = std::min(num_words, in.num_words());
  for (size_t wi = 0; wi < shared; ++wi) words[wi] &= in.words()[wi];
  for (size_t wi = shared; wi < num_words; ++wi) words[wi] = 0;
}

// values[i] in [lo, hi] — fused range predicate.
template <typename T>
void FilterBetweenBv(const T* values, size_t n, T lo, T hi, BitVector* out) {
  out->Resize(n);
  if (n == 0) return;
  if constexpr (simd::kHasKernelTables<T>) {
    simd::filter_kernels<T>().between_bv(values, n, lo, hi,
                                         out->mutable_words());
  } else {
    uint64_t* words = out->mutable_words();
    for (size_t i = 0; i < n; ++i) {
      const uint64_t bit = (values[i] >= lo && values[i] <= hi) ? 1u : 0u;
      words[i >> 6] |= bit << (i & 63);
    }
  }
}

// Column-vs-column comparison (e.g. l_commitdate < l_receiptdate).
template <CmpOp op, typename T>
void FilterColColBv(const T* left, const T* right, size_t n, BitVector* out) {
  out->Resize(n);
  if (n == 0) return;
  if constexpr (simd::kHasKernelTables<T>) {
    simd::filter_kernels<T>().colcol_bv[static_cast<int>(op)](
        left, right, n, out->mutable_words());
  } else {
    uint64_t* words = out->mutable_words();
    for (size_t i = 0; i < n; ++i) {
      const uint64_t bit = Compare<op, T>(left[i], right[i]) ? 1u : 0u;
      words[i >> 6] |= bit << (i & 63);
    }
  }
}

// Dictionary-set membership: qualifying dictionary codes are given as
// a bitmap over the code space (produced by Dictionary::RangeLookup /
// PrefixLookup or an IN list).
void FilterDictSetBv(const uint32_t* codes, size_t n,
                     const BitVector& qualifying_codes, BitVector* out);

// ---- RID-list flavour ------------------------------------------------------

namespace detail {
// RID kernels run the bit-vector kernel over fixed-size chunks and
// extract set bits — the vectorized predicate pays for itself and the
// extraction preserves ascending RID order.
inline constexpr size_t kRidChunkRows = 1024;
}  // namespace detail

// Appends qualifying row offsets to `rids`; used when the expected
// selectivity is below 1/32 (Section 5.4).
template <CmpOp op, typename T>
void FilterConstRid(const T* values, size_t n, T constant,
                    std::vector<uint32_t>* rids) {
  if constexpr (simd::kHasKernelTables<T>) {
    const auto fn = simd::filter_kernels<T>().const_bv[static_cast<int>(op)];
    uint64_t words[detail::kRidChunkRows / 64];
    for (size_t base = 0; base < n; base += detail::kRidChunkRows) {
      const size_t rows = std::min(detail::kRidChunkRows, n - base);
      fn(values + base, rows, constant, words);
      const size_t num_words = (rows + 63) / 64;
      for (size_t wi = 0; wi < num_words; ++wi) {
        uint64_t w = words[wi];
        while (w != 0) {
          rids->push_back(static_cast<uint32_t>(
              base + wi * 64 + static_cast<size_t>(__builtin_ctzll(w))));
          w &= (w - 1);
        }
      }
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (Compare<op, T>(values[i], constant)) {
        rids->push_back(static_cast<uint32_t>(i));
      }
    }
  }
}

// Refines an existing RID list in place: keeps rid r iff
// values[r] op constant. `values` is indexed by the rids (a gathered
// tile), i.e. values[i] corresponds to rids[i].
template <CmpOp op, typename T>
size_t FilterGatheredRid(const T* values, T constant,
                         std::vector<uint32_t>* rids) {
  const size_t n = rids->size();
  size_t out = 0;
  if constexpr (simd::kHasKernelTables<T>) {
    const auto fn = simd::filter_kernels<T>().const_bv[static_cast<int>(op)];
    uint64_t words[detail::kRidChunkRows / 64];
    for (size_t base = 0; base < n; base += detail::kRidChunkRows) {
      const size_t rows = std::min(detail::kRidChunkRows, n - base);
      fn(values + base, rows, constant, words);
      const size_t num_words = (rows + 63) / 64;
      for (size_t wi = 0; wi < num_words; ++wi) {
        uint64_t w = words[wi];
        // In-place compaction is safe: `out` never overtakes the row
        // being read (out <= base + wi*64 + bit always holds).
        while (w != 0) {
          const size_t row =
              base + wi * 64 + static_cast<size_t>(__builtin_ctzll(w));
          (*rids)[out++] = (*rids)[row];
          w &= (w - 1);
        }
      }
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const bool keep = Compare<op, T>(values[i], constant);
      (*rids)[out] = (*rids)[i];
      out += keep ? 1 : 0;
    }
  }
  rids->resize(out);
  return out;
}

}  // namespace rapid::primitives

#endif  // RAPID_PRIMITIVES_FILTER_H_
