// Filter primitives (Section 5.4, Listing 1).
//
// Each primitive is a type-specialized, side-effect-free tight loop
// evaluating one predicate over a tile of column data. Mirroring the
// dpCore implementation, primitives come in two row-representation
// flavours:
//   * bit-vector: consume/produce a bit vector of qualifying rows
//     (the bvld/filteq loop of Listing 1), and
//   * RID-list: consume/produce a list of row offsets, chosen when
//     fewer than 1/32 of rows are expected to qualify.
//
// The C++ templates play the role of the paper's primitive generator
// framework: one template body is instantiated for every supported
// (operation, type) combination at compile time.

#ifndef RAPID_PRIMITIVES_FILTER_H_
#define RAPID_PRIMITIVES_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitvector.h"

namespace rapid::primitives {

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

template <CmpOp op, typename T>
inline bool Compare(T value, T constant) {
  if constexpr (op == CmpOp::kEq) return value == constant;
  if constexpr (op == CmpOp::kNe) return value != constant;
  if constexpr (op == CmpOp::kLt) return value < constant;
  if constexpr (op == CmpOp::kLe) return value <= constant;
  if constexpr (op == CmpOp::kGt) return value > constant;
  if constexpr (op == CmpOp::kGe) return value >= constant;
}

// ---- Bit-vector flavour ----------------------------------------------------

// out[i] = (values[i] op constant), for all rows of the tile.
// Branch-free body: the comparison result is written as a bit.
template <CmpOp op, typename T>
void FilterConstBv(const T* values, size_t n, T constant, BitVector* out) {
  out->Resize(n);
  uint64_t* words = out->mutable_words();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bit = Compare<op, T>(values[i], constant) ? 1u : 0u;
    words[i >> 6] |= bit << (i & 63);
  }
}

// Refines a previous predicate's bit vector: for rows whose bit is
// set, re-evaluate; others stay unqualified. This is the
// rpdmpr_bvflt loop of Listing 1 (bvld gathers the next qualifying
// value, filteq tests it).
template <CmpOp op, typename T>
void FilterConstBvRefine(const T* values, size_t n, T constant,
                         const BitVector& in, BitVector* out) {
  out->Resize(n);
  for (size_t wi = 0; wi < in.num_words(); ++wi) {
    uint64_t w = in.words()[wi];
    uint64_t result = 0;
    while (w != 0) {
      const int bit = __builtin_ctzll(w);
      const size_t row = wi * 64 + static_cast<size_t>(bit);
      if (row < n && Compare<op, T>(values[row], constant)) {
        result |= uint64_t{1} << bit;
      }
      w &= (w - 1);
    }
    out->mutable_words()[wi] = result;
  }
}

// values[i] in [lo, hi] — fused range predicate.
template <typename T>
void FilterBetweenBv(const T* values, size_t n, T lo, T hi, BitVector* out) {
  out->Resize(n);
  uint64_t* words = out->mutable_words();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bit = (values[i] >= lo && values[i] <= hi) ? 1u : 0u;
    words[i >> 6] |= bit << (i & 63);
  }
}

// Column-vs-column comparison (e.g. l_commitdate < l_receiptdate).
template <CmpOp op, typename T>
void FilterColColBv(const T* left, const T* right, size_t n, BitVector* out) {
  out->Resize(n);
  uint64_t* words = out->mutable_words();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bit = Compare<op, T>(left[i], right[i]) ? 1u : 0u;
    words[i >> 6] |= bit << (i & 63);
  }
}

// Dictionary-set membership: qualifying dictionary codes are given as
// a bitmap over the code space (produced by Dictionary::RangeLookup /
// PrefixLookup or an IN list).
void FilterDictSetBv(const uint32_t* codes, size_t n,
                     const BitVector& qualifying_codes, BitVector* out);

// ---- RID-list flavour ------------------------------------------------------

// Appends qualifying row offsets to `rids`; used when the expected
// selectivity is below 1/32 (Section 5.4).
template <CmpOp op, typename T>
void FilterConstRid(const T* values, size_t n, T constant,
                    std::vector<uint32_t>* rids) {
  for (size_t i = 0; i < n; ++i) {
    if (Compare<op, T>(values[i], constant)) {
      rids->push_back(static_cast<uint32_t>(i));
    }
  }
}

// Refines an existing RID list in place: keeps rid r iff
// values[r] op constant. `values` is indexed by the rids (a gathered
// tile), i.e. values[i] corresponds to rids[i].
template <CmpOp op, typename T>
size_t FilterGatheredRid(const T* values, T constant,
                         std::vector<uint32_t>* rids) {
  size_t out = 0;
  for (size_t i = 0; i < rids->size(); ++i) {
    const bool keep = Compare<op, T>(values[i], constant);
    (*rids)[out] = (*rids)[i];
    out += keep ? 1 : 0;
  }
  rids->resize(out);
  return out;
}

}  // namespace rapid::primitives

#endif  // RAPID_PRIMITIVES_FILTER_H_
