// SSE4.2 kernel tier.
//
// Kernels live inside a `#pragma GCC target("sse4.2")` region (the
// function-level equivalent of crc32.cc's dispatch idiom, extended to
// templates) and are explicitly instantiated there so their codegen
// gets the SSE4.2 flags; the overlay functions at the bottom are
// compiled with baseline flags and only install function pointers, so
// table construction executes no SSE4.2 instruction. This tier
// provides:
//   * 128-bit compare kernels for 4/8-byte filter primitives
//     (_mm_cmpgt_epi64 is the SSE4.2 piece; narrower widths wait for
//     the AVX2 tier),
//   * batched hardware-CRC32C hash kernels (4-way unrolled crc32
//     instruction, bit-identical to Crc32U64),
//   * a 4-way partial histogram for the partition map (plain stores;
//     the win is breaking the per-slot store-forwarding dependency,
//     so it needs no vector instructions at all).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "primitives/simd.h"
#include "primitives/simd_isa.h"
#include "primitives/simd_scalar.h"

#if defined(__x86_64__)
#define RAPID_SIMD_X86_64 1
#endif

#if defined(RAPID_SIMD_X86_64)

#pragma GCC push_options
#pragma GCC target("sse4.2")
#include <immintrin.h>

namespace rapid::primitives::simd::sse42_impl {

// ---- Per-type vector traits ----------------------------------------------
// Unsigned ordered compares flip the sign bit of both operands and use
// the signed compare (equality is unaffected by the flip).

template <typename T>
struct V;

template <>
struct V<int32_t> {
  static constexpr int kStepRows = 4;
  using Vec = __m128i;
  static inline Vec Bcast(int32_t c) { return _mm_set1_epi32(c); }
  static inline Vec Load(const int32_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static inline uint64_t MaskEq(Vec a, Vec b) {
    return static_cast<uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(a, b))));
  }
  static inline uint64_t MaskGt(Vec a, Vec b) {
    return static_cast<uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(a, b))));
  }
};

template <>
struct V<uint32_t> {
  static constexpr int kStepRows = 4;
  using Vec = __m128i;
  static inline Vec Flip(Vec v) {
    return _mm_xor_si128(v, _mm_set1_epi32(static_cast<int32_t>(0x80000000u)));
  }
  static inline Vec Bcast(uint32_t c) {
    return Flip(_mm_set1_epi32(static_cast<int32_t>(c)));
  }
  static inline Vec Load(const uint32_t* p) {
    return Flip(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static inline uint64_t MaskEq(Vec a, Vec b) { return V<int32_t>::MaskEq(a, b); }
  static inline uint64_t MaskGt(Vec a, Vec b) { return V<int32_t>::MaskGt(a, b); }
};

template <>
struct V<int64_t> {
  static constexpr int kStepRows = 2;
  using Vec = __m128i;
  static inline Vec Bcast(int64_t c) { return _mm_set1_epi64x(c); }
  static inline Vec Load(const int64_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static inline uint64_t MaskEq(Vec a, Vec b) {
    return static_cast<uint32_t>(
        _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(a, b))));
  }
  static inline uint64_t MaskGt(Vec a, Vec b) {
    return static_cast<uint32_t>(
        _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(a, b))));
  }
};

template <>
struct V<uint64_t> {
  static constexpr int kStepRows = 2;
  using Vec = __m128i;
  static inline Vec Flip(Vec v) {
    return _mm_xor_si128(v, _mm_set1_epi64x(INT64_MIN));
  }
  static inline Vec Bcast(uint64_t c) {
    return Flip(_mm_set1_epi64x(static_cast<int64_t>(c)));
  }
  static inline Vec Load(const uint64_t* p) {
    return Flip(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static inline uint64_t MaskEq(Vec a, Vec b) { return V<int64_t>::MaskEq(a, b); }
  static inline uint64_t MaskGt(Vec a, Vec b) { return V<int64_t>::MaskGt(a, b); }
};

// ---- Whole-word drivers ---------------------------------------------------
// ne/le/ge are the bitwise complements of eq/gt/lt over a full 64-row
// word; tails fall back to the masked scalar word builders.

template <CmpOp op, typename T>
static inline uint64_t ConstWord64(const T* p, const typename V<T>::Vec c) {
  using VT = V<T>;
  uint64_t bits = 0;
  for (int k = 0; k < 64 / VT::kStepRows; ++k) {
    const T* q = p + k * VT::kStepRows;
    uint64_t m;
    if constexpr (op == CmpOp::kEq || op == CmpOp::kNe) {
      m = VT::MaskEq(VT::Load(q), c);
    } else if constexpr (op == CmpOp::kGt || op == CmpOp::kLe) {
      m = VT::MaskGt(VT::Load(q), c);
    } else {
      m = VT::MaskGt(c, VT::Load(q));
    }
    bits |= m << (k * VT::kStepRows);
  }
  if constexpr (op == CmpOp::kNe || op == CmpOp::kLe || op == CmpOp::kGe) {
    bits = ~bits;
  }
  return bits;
}

template <CmpOp op, typename T>
static inline uint64_t ColColWord64(const T* a, const T* b) {
  using VT = V<T>;
  uint64_t bits = 0;
  for (int k = 0; k < 64 / VT::kStepRows; ++k) {
    const T* qa = a + k * VT::kStepRows;
    const T* qb = b + k * VT::kStepRows;
    uint64_t m;
    if constexpr (op == CmpOp::kEq || op == CmpOp::kNe) {
      m = VT::MaskEq(VT::Load(qa), VT::Load(qb));
    } else if constexpr (op == CmpOp::kGt || op == CmpOp::kLe) {
      m = VT::MaskGt(VT::Load(qa), VT::Load(qb));
    } else {
      m = VT::MaskGt(VT::Load(qb), VT::Load(qa));
    }
    bits |= m << (k * VT::kStepRows);
  }
  if constexpr (op == CmpOp::kNe || op == CmpOp::kLe || op == CmpOp::kGe) {
    bits = ~bits;
  }
  return bits;
}

// ---- Filter kernels -------------------------------------------------------

template <CmpOp op, typename T>
void FilterConstBv(const T* values, size_t n, T constant, uint64_t* words) {
  const typename V<T>::Vec c = V<T>::Bcast(constant);
  size_t i = 0, w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    words[w] = ConstWord64<op, T>(values + i, c);
  }
  if (i < n) words[w] = CmpConstWord<op, T>(values + i, n - i, constant);
}

template <CmpOp op, typename T>
void FilterColColBv(const T* left, const T* right, size_t n, uint64_t* words) {
  size_t i = 0, w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    words[w] = ColColWord64<op, T>(left + i, right + i);
  }
  if (i < n) words[w] = CmpColColWord<op, T>(left + i, right + i, n - i);
}

template <typename T>
void FilterBetweenBv(const T* values, size_t n, T lo, T hi, uint64_t* words) {
  using VT = V<T>;
  const typename VT::Vec vlo = VT::Bcast(lo);
  const typename VT::Vec vhi = VT::Bcast(hi);
  size_t i = 0, w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    // in [lo, hi]  ==  !(v < lo || v > hi)
    uint64_t below = 0, above = 0;
    for (int k = 0; k < 64 / VT::kStepRows; ++k) {
      const T* q = values + i + k * VT::kStepRows;
      const typename VT::Vec v = VT::Load(q);
      below |= VT::MaskGt(vlo, v) << (k * VT::kStepRows);
      above |= VT::MaskGt(v, vhi) << (k * VT::kStepRows);
    }
    words[w] = ~(below | above);
  }
  if (i < n) words[w] = BetweenWord<T>(values + i, n - i, lo, hi);
}

#define RAPID_SSE42_INSTANTIATE_FILTER(T)                                     \
  template void FilterConstBv<CmpOp::kEq, T>(const T*, size_t, T, uint64_t*); \
  template void FilterConstBv<CmpOp::kNe, T>(const T*, size_t, T, uint64_t*); \
  template void FilterConstBv<CmpOp::kLt, T>(const T*, size_t, T, uint64_t*); \
  template void FilterConstBv<CmpOp::kLe, T>(const T*, size_t, T, uint64_t*); \
  template void FilterConstBv<CmpOp::kGt, T>(const T*, size_t, T, uint64_t*); \
  template void FilterConstBv<CmpOp::kGe, T>(const T*, size_t, T, uint64_t*); \
  template void FilterColColBv<CmpOp::kEq, T>(const T*, const T*, size_t,     \
                                              uint64_t*);                     \
  template void FilterColColBv<CmpOp::kNe, T>(const T*, const T*, size_t,     \
                                              uint64_t*);                     \
  template void FilterColColBv<CmpOp::kLt, T>(const T*, const T*, size_t,     \
                                              uint64_t*);                     \
  template void FilterColColBv<CmpOp::kLe, T>(const T*, const T*, size_t,     \
                                              uint64_t*);                     \
  template void FilterColColBv<CmpOp::kGt, T>(const T*, const T*, size_t,     \
                                              uint64_t*);                     \
  template void FilterColColBv<CmpOp::kGe, T>(const T*, const T*, size_t,     \
                                              uint64_t*);                     \
  template void FilterBetweenBv<T>(const T*, size_t, T, T, uint64_t*);

RAPID_SSE42_INSTANTIATE_FILTER(int32_t)
RAPID_SSE42_INSTANTIATE_FILTER(uint32_t)
RAPID_SSE42_INSTANTIATE_FILTER(int64_t)
RAPID_SSE42_INSTANTIATE_FILTER(uint64_t)
#undef RAPID_SSE42_INSTANTIATE_FILTER

// ---- RLE expansion kernels ------------------------------------------------
// Broadcast the run value into a 128-bit register once per run, then
// fill with unaligned stores; rows past the last full vector store
// scalar. Same store order and values as the scalar twin.

template <typename T>
void RleExpand(const T* run_values, const uint32_t* run_lengths,
               size_t num_runs, T* out) {
  constexpr size_t kLane = 16 / sizeof(T);
  for (size_t r = 0; r < num_runs; ++r) {
    const T value = run_values[r];
    const uint32_t length = run_lengths[r];
    __m128i splat;
    if constexpr (sizeof(T) == 4) {
      splat = _mm_set1_epi32(static_cast<int32_t>(value));
    } else {
      splat = _mm_set1_epi64x(static_cast<int64_t>(value));
    }
    size_t i = 0;
    for (; i + kLane <= length; i += kLane) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), splat);
    }
    for (; i < length; ++i) out[i] = value;
    out += length;
  }
}

template void RleExpand<int32_t>(const int32_t*, const uint32_t*, size_t,
                                 int32_t*);
template void RleExpand<uint32_t>(const uint32_t*, const uint32_t*, size_t,
                                  uint32_t*);
template void RleExpand<int64_t>(const int64_t*, const uint32_t*, size_t,
                                 int64_t*);
template void RleExpand<uint64_t>(const uint64_t*, const uint32_t*, size_t,
                                  uint64_t*);

// ---- Hash kernels ---------------------------------------------------------
// One crc32 instruction per 8-byte key; sign-extension of narrower
// signed keys matches the scalar static_cast<uint64_t>(keys[i]). The
// 4-way unroll hides the 3-cycle crc32 latency across independent
// rows. Seeds match Crc32U64 / Crc32Combine exactly.

template <typename T>
void HashTile(const T* keys, size_t n, uint32_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    out[i + 0] = static_cast<uint32_t>(__builtin_ia32_crc32di(
        0xFFFFFFFFu, static_cast<uint64_t>(keys[i + 0])));
    out[i + 1] = static_cast<uint32_t>(__builtin_ia32_crc32di(
        0xFFFFFFFFu, static_cast<uint64_t>(keys[i + 1])));
    out[i + 2] = static_cast<uint32_t>(__builtin_ia32_crc32di(
        0xFFFFFFFFu, static_cast<uint64_t>(keys[i + 2])));
    out[i + 3] = static_cast<uint32_t>(__builtin_ia32_crc32di(
        0xFFFFFFFFu, static_cast<uint64_t>(keys[i + 3])));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<uint32_t>(
        __builtin_ia32_crc32di(0xFFFFFFFFu, static_cast<uint64_t>(keys[i])));
  }
}

template <typename T>
void HashCombineTile(const T* keys, size_t n, uint32_t* inout) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    inout[i + 0] = static_cast<uint32_t>(__builtin_ia32_crc32di(
        inout[i + 0], static_cast<uint64_t>(keys[i + 0])));
    inout[i + 1] = static_cast<uint32_t>(__builtin_ia32_crc32di(
        inout[i + 1], static_cast<uint64_t>(keys[i + 1])));
    inout[i + 2] = static_cast<uint32_t>(__builtin_ia32_crc32di(
        inout[i + 2], static_cast<uint64_t>(keys[i + 2])));
    inout[i + 3] = static_cast<uint32_t>(__builtin_ia32_crc32di(
        inout[i + 3], static_cast<uint64_t>(keys[i + 3])));
  }
  for (; i < n; ++i) {
    inout[i] = static_cast<uint32_t>(
        __builtin_ia32_crc32di(inout[i], static_cast<uint64_t>(keys[i])));
  }
}

#define RAPID_SSE42_INSTANTIATE_HASH(T)                      \
  template void HashTile<T>(const T*, size_t, uint32_t*);    \
  template void HashCombineTile<T>(const T*, size_t, uint32_t*);
RAPID_SIMD_FOR_EACH_TYPE(RAPID_SSE42_INSTANTIATE_HASH)
#undef RAPID_SSE42_INSTANTIATE_HASH

}  // namespace rapid::primitives::simd::sse42_impl

#pragma GCC pop_options

#endif  // RAPID_SIMD_X86_64

namespace rapid::primitives::simd {

#if defined(RAPID_SIMD_X86_64)

namespace {

// Plain-C++ 4-way partial histogram: four independent count arrays
// break the load-increment-store dependency on hot partitions. Merged
// counts are order-independent, so the result is bit-identical.
void Histogram4Way(const uint16_t* partition_of, size_t n, uint32_t* counts,
                   size_t fanout) {
  if (n < 256 || fanout > 8192) {
    for (size_t i = 0; i < n; ++i) ++counts[partition_of[i]];
    return;
  }
  thread_local std::vector<uint32_t> scratch;
  scratch.assign(3 * fanout, 0);
  uint32_t* c1 = scratch.data();
  uint32_t* c2 = c1 + fanout;
  uint32_t* c3 = c2 + fanout;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    ++counts[partition_of[i + 0]];
    ++c1[partition_of[i + 1]];
    ++c2[partition_of[i + 2]];
    ++c3[partition_of[i + 3]];
  }
  for (; i < n; ++i) ++counts[partition_of[i]];
  for (size_t p = 0; p < fanout; ++p) counts[p] += c1[p] + c2[p] + c3[p];
}

// 4-way unrolled Bloom probe: Mix64 and the lane tests are plain
// integer ops (no vector instructions required), but four independent
// rows per iteration hide the mix multiply latency and overlap the
// four block loads. Same exact function as the scalar twin, so the
// output is bit-identical.
template <typename T>
uint64_t BloomProbeWord4Way(const T* values, size_t rows,
                            const uint64_t* blocks, uint32_t block_mask) {
  uint64_t w = 0;
  size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const uint64_t h0 = Mix64(static_cast<uint64_t>(values[i + 0]));
    const uint64_t h1 = Mix64(static_cast<uint64_t>(values[i + 1]));
    const uint64_t h2 = Mix64(static_cast<uint64_t>(values[i + 2]));
    const uint64_t h3 = Mix64(static_cast<uint64_t>(values[i + 3]));
    const uint64_t* b0 = blocks + BloomBlockIndex(h0, block_mask) * kBloomLanes;
    const uint64_t* b1 = blocks + BloomBlockIndex(h1, block_mask) * kBloomLanes;
    const uint64_t* b2 = blocks + BloomBlockIndex(h2, block_mask) * kBloomLanes;
    const uint64_t* b3 = blocks + BloomBlockIndex(h3, block_mask) * kBloomLanes;
    w |= static_cast<uint64_t>(BloomBlockTest(b0, static_cast<uint32_t>(h0)))
         << (i + 0);
    w |= static_cast<uint64_t>(BloomBlockTest(b1, static_cast<uint32_t>(h1)))
         << (i + 1);
    w |= static_cast<uint64_t>(BloomBlockTest(b2, static_cast<uint32_t>(h2)))
         << (i + 2);
    w |= static_cast<uint64_t>(BloomBlockTest(b3, static_cast<uint32_t>(h3)))
         << (i + 3);
  }
  for (; i < rows; ++i) {
    const uint64_t h = Mix64(static_cast<uint64_t>(values[i]));
    const uint64_t* b = blocks + BloomBlockIndex(h, block_mask) * kBloomLanes;
    w |= static_cast<uint64_t>(BloomBlockTest(b, static_cast<uint32_t>(h)))
         << i;
  }
  return w;
}

template <typename T>
void BloomProbeBv4Way(const T* values, size_t n, const uint64_t* blocks,
                      uint32_t block_mask, uint64_t* words) {
  size_t i = 0, w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    words[w] = BloomProbeWord4Way<T>(values + i, 64, blocks, block_mask);
  }
  if (i < n) {
    words[w] = BloomProbeWord4Way<T>(values + i, n - i, blocks, block_mask);
  }
}

}  // namespace

#define RAPID_SSE42_OVERLAY_FILTER(T)                                        \
  void Sse42Overlay(FilterKernelTable<T>* t) {                               \
    t->const_bv[static_cast<int>(CmpOp::kEq)] =                              \
        &sse42_impl::FilterConstBv<CmpOp::kEq, T>;                           \
    t->const_bv[static_cast<int>(CmpOp::kNe)] =                              \
        &sse42_impl::FilterConstBv<CmpOp::kNe, T>;                           \
    t->const_bv[static_cast<int>(CmpOp::kLt)] =                              \
        &sse42_impl::FilterConstBv<CmpOp::kLt, T>;                           \
    t->const_bv[static_cast<int>(CmpOp::kLe)] =                              \
        &sse42_impl::FilterConstBv<CmpOp::kLe, T>;                           \
    t->const_bv[static_cast<int>(CmpOp::kGt)] =                              \
        &sse42_impl::FilterConstBv<CmpOp::kGt, T>;                           \
    t->const_bv[static_cast<int>(CmpOp::kGe)] =                              \
        &sse42_impl::FilterConstBv<CmpOp::kGe, T>;                           \
    t->colcol_bv[static_cast<int>(CmpOp::kEq)] =                             \
        &sse42_impl::FilterColColBv<CmpOp::kEq, T>;                          \
    t->colcol_bv[static_cast<int>(CmpOp::kNe)] =                             \
        &sse42_impl::FilterColColBv<CmpOp::kNe, T>;                          \
    t->colcol_bv[static_cast<int>(CmpOp::kLt)] =                             \
        &sse42_impl::FilterColColBv<CmpOp::kLt, T>;                          \
    t->colcol_bv[static_cast<int>(CmpOp::kLe)] =                             \
        &sse42_impl::FilterColColBv<CmpOp::kLe, T>;                          \
    t->colcol_bv[static_cast<int>(CmpOp::kGt)] =                             \
        &sse42_impl::FilterColColBv<CmpOp::kGt, T>;                          \
    t->colcol_bv[static_cast<int>(CmpOp::kGe)] =                             \
        &sse42_impl::FilterColColBv<CmpOp::kGe, T>;                          \
    t->between_bv = &sse42_impl::FilterBetweenBv<T>;                         \
  }

#define RAPID_SSE42_OVERLAY_FILTER_NOOP(T) \
  void Sse42Overlay(FilterKernelTable<T>* t) { (void)t; }

RAPID_SSE42_OVERLAY_FILTER_NOOP(int8_t)
RAPID_SSE42_OVERLAY_FILTER_NOOP(uint8_t)
RAPID_SSE42_OVERLAY_FILTER_NOOP(int16_t)
RAPID_SSE42_OVERLAY_FILTER_NOOP(uint16_t)
RAPID_SSE42_OVERLAY_FILTER(int32_t)
RAPID_SSE42_OVERLAY_FILTER(uint32_t)
RAPID_SSE42_OVERLAY_FILTER(int64_t)
RAPID_SSE42_OVERLAY_FILTER(uint64_t)
#undef RAPID_SSE42_OVERLAY_FILTER
#undef RAPID_SSE42_OVERLAY_FILTER_NOOP

#define RAPID_SSE42_OVERLAY_REST(T)                                \
  void Sse42Overlay(AggKernelTable<T>* t) { (void)t; }             \
  void Sse42Overlay(ArithKernelTable<T>* t) { (void)t; }           \
  void Sse42Overlay(HashKernelTable<T>* t) {                       \
    t->tile = &sse42_impl::HashTile<T>;                            \
    t->combine = &sse42_impl::HashCombineTile<T>;                  \
  }                                                                \
  void Sse42Overlay(BloomKernelTable<T>* t) {                      \
    t->probe_bv = &BloomProbeBv4Way<T>;                            \
  }
RAPID_SIMD_FOR_EACH_TYPE(RAPID_SSE42_OVERLAY_REST)
#undef RAPID_SSE42_OVERLAY_REST

#define RAPID_SSE42_OVERLAY_RLE(T) \
  void Sse42Overlay(RleKernelTable<T>* t) { t->expand = &sse42_impl::RleExpand<T>; }
#define RAPID_SSE42_OVERLAY_RLE_NOOP(T) \
  void Sse42Overlay(RleKernelTable<T>* t) { (void)t; }

RAPID_SSE42_OVERLAY_RLE_NOOP(int8_t)
RAPID_SSE42_OVERLAY_RLE_NOOP(uint8_t)
RAPID_SSE42_OVERLAY_RLE_NOOP(int16_t)
RAPID_SSE42_OVERLAY_RLE_NOOP(uint16_t)
RAPID_SSE42_OVERLAY_RLE(int32_t)
RAPID_SSE42_OVERLAY_RLE(uint32_t)
RAPID_SSE42_OVERLAY_RLE(int64_t)
RAPID_SSE42_OVERLAY_RLE(uint64_t)
#undef RAPID_SSE42_OVERLAY_RLE
#undef RAPID_SSE42_OVERLAY_RLE_NOOP

void Sse42Overlay(PartitionKernelTable* t) { t->histogram = &Histogram4Way; }

#else  // !RAPID_SIMD_X86_64

#define RAPID_SSE42_OVERLAY_NOOP(T)                        \
  void Sse42Overlay(FilterKernelTable<T>* t) { (void)t; }  \
  void Sse42Overlay(AggKernelTable<T>* t) { (void)t; }     \
  void Sse42Overlay(ArithKernelTable<T>* t) { (void)t; }   \
  void Sse42Overlay(HashKernelTable<T>* t) { (void)t; }    \
  void Sse42Overlay(BloomKernelTable<T>* t) { (void)t; }   \
  void Sse42Overlay(RleKernelTable<T>* t) { (void)t; }
RAPID_SIMD_FOR_EACH_TYPE(RAPID_SSE42_OVERLAY_NOOP)
#undef RAPID_SSE42_OVERLAY_NOOP

void Sse42Overlay(PartitionKernelTable* t) { (void)t; }

#endif  // RAPID_SIMD_X86_64

}  // namespace rapid::primitives::simd
