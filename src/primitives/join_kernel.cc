#include "primitives/join_kernel.h"

#include "primitives/simd.h"

namespace rapid::primitives {

CompactJoinTable::CompactJoinTable(size_t num_rows, size_t num_buckets,
                                   size_t dmem_capacity_rows)
    : num_rows_(num_rows),
      num_buckets_(num_buckets),
      bucket_mask_(num_buckets - 1),
      dmem_capacity_(dmem_capacity_rows) {
  RAPID_CHECK(num_buckets > 0 && (num_buckets & (num_buckets - 1)) == 0);
  // Entries must address any DMEM row offset plus the sentinel.
  const size_t dmem_entries =
      dmem_capacity_rows < num_rows ? dmem_capacity_rows : num_rows;
  const int bits = BitsFor(dmem_entries);  // values 0..dmem_entries, sentinel
  dmem_buckets_.Reset(num_buckets, bits);
  dmem_link_.Reset(dmem_entries > 0 ? dmem_entries : 1, bits);
  dmem_sentinel_ = dmem_buckets_.max_value();
  dmem_buckets_.FillWithMax();
  dmem_link_.FillWithMax();

  if (num_rows > dmem_capacity_rows) {
    // Statistics were off: pre-size the DRAM overflow region.
    dram_buckets_.assign(num_buckets, kDramSentinel);
    dram_link_.assign(num_rows - dmem_capacity_rows, kDramSentinel);
  }
}

void CompactJoinTable::Insert(uint32_t hash, size_t row_offset) {
  RAPID_CHECK(row_offset < num_rows_);
  const size_t bucket = hash & bucket_mask_;
  if (row_offset < dmem_capacity_) {
    // Normal DMEM insert: chain backwards to the previous occupant.
    dmem_link_.Set(row_offset, dmem_buckets_.Get(bucket));
    dmem_buckets_.Set(bucket, row_offset);
    ++dmem_rows_;
  } else {
    // Small-skew overflow: the row lands in the DRAM extension. The
    // DRAM region has its own bucket heads so DMEM chains stay intact.
    if (dram_buckets_.empty()) {
      dram_buckets_.assign(num_buckets_, kDramSentinel);
    }
    const size_t slot = row_offset - dmem_capacity_;
    if (slot >= dram_link_.size()) {
      dram_link_.resize(slot + 1, kDramSentinel);
    }
    dram_link_[slot] = dram_buckets_[bucket];
    dram_buckets_[bucket] = row_offset;
    ++overflow_rows_;
  }
}

void ComputeBucketIndices(const uint32_t* hashes, size_t n, size_t num_buckets,
                          uint32_t* indices) {
  const uint32_t mask = static_cast<uint32_t>(num_buckets) - 1;
  simd::partition_kernels().bucket_indices(hashes, n, mask, indices);
}

}  // namespace rapid::primitives
