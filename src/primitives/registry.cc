#include "primitives/registry.h"

#include <algorithm>
#include <cctype>

#include "primitives/simd.h"

namespace rapid::primitives {

namespace {

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

}  // namespace

std::string PrimitiveCatalog::FilterName(const std::string& op, int width,
                                         bool rid_variant) {
  // bvflt: bit-vector filter; ridflt: RID-list filter. ub<N>: unsigned
  // binary of N bytes. cval: compare against a constant value.
  return std::string("rpdmpr_") + (rid_variant ? "ridflt" : "bvflt") + "_ub" +
         std::to_string(width) + "_OPT_TYPE_" + Upper(op) + "_cval";
}

PrimitiveCatalog::PrimitiveCatalog() {
  const char* cmp_ops[] = {"eq", "ne", "lt", "le", "gt", "ge"};
  const int widths[] = {1, 2, 4, 8};
  for (const char* op : cmp_ops) {
    for (int w : widths) {
      for (bool rid : {false, true}) {
        primitives_.push_back(
            PrimitiveInfo{FilterName(op, w, rid), "filter", op, w, rid});
      }
    }
  }
  const char* arith_ops[] = {"add", "sub", "mul"};
  for (const char* op : arith_ops) {
    for (int w : {4, 8}) {
      primitives_.push_back(PrimitiveInfo{
          std::string("rpdmpr_arith_ub") + std::to_string(w) + "_" + op,
          "arith", op, w, false});
    }
  }
  for (int w : {1, 2, 4, 8}) {
    primitives_.push_back(PrimitiveInfo{
        std::string("rpdmpr_crc32_ub") + std::to_string(w), "hash", "crc32",
        w, false});
  }
  const char* agg_ops[] = {"sum", "min", "max", "count"};
  for (const char* op : agg_ops) {
    for (int w : {4, 8}) {
      primitives_.push_back(PrimitiveInfo{
          std::string("rpdmpr_agg_ub") + std::to_string(w) + "_" + op, "agg",
          op, w, false});
    }
  }
  for (int w : {1, 2, 4, 8}) {
    primitives_.push_back(PrimitiveInfo{
        std::string("rpdmpr_rledec_ub") + std::to_string(w), "rle", "expand",
        w, false});
  }
  primitives_.push_back(PrimitiveInfo{"rpdmpr_compute_partition_map",
                                      "partition", "map", 0, false});
  primitives_.push_back(
      PrimitiveInfo{"swpart_partcol_ub4", "partition", "partcol", 4, false});
  primitives_.push_back(
      PrimitiveInfo{"swpart_partcol_ub8", "partition", "partcol", 8, false});
  primitives_.push_back(
      PrimitiveInfo{"swpart_scatcol_ub8", "partition", "scatcol", 8, false});
}

const PrimitiveCatalog& PrimitiveCatalog::Instance() {
  static const PrimitiveCatalog* catalog = new PrimitiveCatalog();
  return *catalog;
}

Result<PrimitiveInfo> PrimitiveCatalog::Find(const std::string& name) const {
  for (const PrimitiveInfo& info : primitives_) {
    if (info.name == name) return info;
  }
  return Status::NotFound("no primitive named '" + name + "'");
}

Result<std::string> PrimitiveCatalog::ResolvedIsa(const std::string& name) const {
  Result<PrimitiveInfo> info = Find(name);
  if (!info.ok()) return info.status();
  return std::string(SimdLevelName(
      simd::ResolvedLevel(info.value().family, info.value().input_width)));
}

}  // namespace rapid::primitives
