// Scalar reference kernels backing the level-0 dispatch tables, plus
// the whole-word builders every tier uses for unaligned tile tails.
//
// Everything here is `static` (internal linkage) ON PURPOSE: this
// header is included both by simd.cc (baseline codegen) and by the
// per-ISA translation units, which compile under `#pragma GCC target`
// regions. With external linkage the instantiations would share one
// COMDAT symbol and the linker could keep the ISA-compiled copy,
// silently executing e.g. AVX2 instructions on the scalar path.
// Internal linkage gives each TU its own copy compiled with its own
// target flags.

#ifndef RAPID_PRIMITIVES_SIMD_SCALAR_H_
#define RAPID_PRIMITIVES_SIMD_SCALAR_H_

#include <cstddef>
#include <cstdint>

#include "common/crc32.h"
#include "primitives/agg.h"
#include "primitives/bloom.h"
#include "primitives/simd.h"

namespace rapid::primitives::simd {

// ---- Whole-word builders (rows <= 64; bits >= rows stay zero) -------------

template <CmpOp op, typename T>
static inline uint64_t CmpConstWord(const T* values, size_t rows, T constant) {
  uint64_t w = 0;
  for (size_t i = 0; i < rows; ++i) {
    w |= static_cast<uint64_t>(Compare<op, T>(values[i], constant)) << i;
  }
  return w;
}

template <CmpOp op, typename T>
static inline uint64_t CmpColColWord(const T* left, const T* right,
                                     size_t rows) {
  uint64_t w = 0;
  for (size_t i = 0; i < rows; ++i) {
    w |= static_cast<uint64_t>(Compare<op, T>(left[i], right[i])) << i;
  }
  return w;
}

template <typename T>
static inline uint64_t BetweenWord(const T* values, size_t rows, T lo, T hi) {
  uint64_t w = 0;
  for (size_t i = 0; i < rows; ++i) {
    w |= static_cast<uint64_t>(values[i] >= lo && values[i] <= hi) << i;
  }
  return w;
}

// ---- Filter kernels -------------------------------------------------------

template <CmpOp op, typename T>
static void ScalarFilterConstBv(const T* values, size_t n, T constant,
                                uint64_t* words) {
  size_t i = 0, w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    words[w] = CmpConstWord<op, T>(values + i, 64, constant);
  }
  if (i < n) words[w] = CmpConstWord<op, T>(values + i, n - i, constant);
}

template <CmpOp op, typename T>
static void ScalarFilterColColBv(const T* left, const T* right, size_t n,
                                 uint64_t* words) {
  size_t i = 0, w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    words[w] = CmpColColWord<op, T>(left + i, right + i, 64);
  }
  if (i < n) words[w] = CmpColColWord<op, T>(left + i, right + i, n - i);
}

template <typename T>
static void ScalarFilterBetweenBv(const T* values, size_t n, T lo, T hi,
                                  uint64_t* words) {
  size_t i = 0, w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    words[w] = BetweenWord<T>(values + i, 64, lo, hi);
  }
  if (i < n) words[w] = BetweenWord<T>(values + i, n - i, lo, hi);
}

// ---- Aggregation kernels --------------------------------------------------

template <typename T>
static void ScalarAggTile(const T* values, size_t n, AggState* state) {
  for (size_t i = 0; i < n; ++i) {
    const int64_t v = static_cast<int64_t>(values[i]);
    state->sum += v;
    if (v < state->min) state->min = v;
    if (v > state->max) state->max = v;
  }
  state->count += n;
}

template <typename T>
static void ScalarAggTileSelected(const T* values, const uint64_t* words,
                                  size_t num_words, AggState* state) {
  for (size_t wi = 0; wi < num_words; ++wi) {
    uint64_t w = words[wi];
    while (w != 0) {
      const size_t row = wi * 64 + static_cast<size_t>(__builtin_ctzll(w));
      const int64_t v = static_cast<int64_t>(values[row]);
      state->sum += v;
      if (v < state->min) state->min = v;
      if (v > state->max) state->max = v;
      ++state->count;
      w &= (w - 1);
    }
  }
}

// ---- Hash kernels ---------------------------------------------------------
// Per-row Crc32U64/Crc32Combine; these dispatch to the hardware CRC32
// instruction independently of the SIMD level (identical values either
// way), so "scalar" here means one call per row, not software CRC.

template <typename T>
static void ScalarHashTile(const T* keys, size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Crc32U64(static_cast<uint64_t>(keys[i]));
  }
}

template <typename T>
static void ScalarHashCombineTile(const T* keys, size_t n, uint32_t* inout) {
  for (size_t i = 0; i < n; ++i) {
    inout[i] = Crc32Combine(inout[i], static_cast<uint64_t>(keys[i]));
  }
}

// ---- Bloom probe kernels --------------------------------------------------

template <typename T>
static inline uint64_t BloomProbeWord(const T* values, size_t rows,
                                      const uint64_t* blocks,
                                      uint32_t block_mask) {
  uint64_t w = 0;
  for (size_t i = 0; i < rows; ++i) {
    const uint64_t h = Mix64(static_cast<uint64_t>(values[i]));
    const uint64_t* block =
        blocks + BloomBlockIndex(h, block_mask) * kBloomLanes;
    w |= static_cast<uint64_t>(
             BloomBlockTest(block, static_cast<uint32_t>(h)))
         << i;
  }
  return w;
}

template <typename T>
static void ScalarBloomProbeBv(const T* values, size_t n,
                               const uint64_t* blocks, uint32_t block_mask,
                               uint64_t* words) {
  size_t i = 0, w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    words[w] = BloomProbeWord<T>(values + i, 64, blocks, block_mask);
  }
  if (i < n) {
    words[w] = BloomProbeWord<T>(values + i, n - i, blocks, block_mask);
  }
}

// ---- RLE expansion kernels ------------------------------------------------

template <typename T>
static void ScalarRleExpand(const T* run_values, const uint32_t* run_lengths,
                            size_t num_runs, T* out) {
  for (size_t r = 0; r < num_runs; ++r) {
    const T value = run_values[r];
    const uint32_t length = run_lengths[r];
    for (uint32_t i = 0; i < length; ++i) out[i] = value;
    out += length;
  }
}

// ---- Arithmetic kernels ---------------------------------------------------

template <ArithOp op, typename T>
static void ScalarArithColCol(const T* left, const T* right, size_t n,
                              T* out) {
  for (size_t i = 0; i < n; ++i) out[i] = Apply<op, T>(left[i], right[i]);
}

template <ArithOp op, typename T>
static void ScalarArithColConst(const T* values, size_t n, T constant,
                                T* out) {
  for (size_t i = 0; i < n; ++i) out[i] = Apply<op, T>(values[i], constant);
}

}  // namespace rapid::primitives::simd

#endif  // RAPID_PRIMITIVES_SIMD_SCALAR_H_
