// Vectorized software-partitioning primitives (Section 5.4,
// Listings 2 and 3).
//
// compute_partition_map turns a tile of hardware-computed CRC32 hash
// values into (a) a partition id per row and (b) per-partition RID
// lists, via branch-free tight loops. swpart_partcol then partitions
// each projection column by gathering rows of one partition at a time
// and emitting them sequentially — several times faster than the
// straightforward scatter because all writes are sequential.

#ifndef RAPID_PRIMITIVES_PARTITION_MAP_H_
#define RAPID_PRIMITIVES_PARTITION_MAP_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace rapid::primitives {

// Per-tile partitioning map: for each partition p, rows_of[p] lists
// the row offsets belonging to p, in tile order.
struct PartitionMap {
  // partition id per row (Listing 2's output vector).
  std::vector<uint16_t> partition_of;
  // histogram: number of rows per partition.
  std::vector<uint32_t> counts;
  // rows grouped by partition: rids[offsets[p] .. offsets[p]+counts[p]).
  std::vector<uint32_t> rids;
  std::vector<uint32_t> offsets;
};

// Listing 2: series of tight loops over the hash values. `fanout`
// must be a power of two; partition id = (hash >> shift) & mask so a
// later software round uses different radix bits than the hardware
// round (pass the bit position via `shift`).
void ComputePartitionMap(const uint32_t* hashes, size_t n, int fanout,
                         int shift, PartitionMap* map);

// Loops 1-2 only, into caller-provided (typically pooled) buffers:
// partition_of gets n entries, counts gets `fanout` zeroed-then-filled
// entries. The scatter kernels consume this directly — the RID list
// (Listing 2 loop 4) is not materialized at all on the scatter path.
void ComputePartitionIndex(const uint32_t* hashes, size_t n, int fanout,
                           int shift, uint16_t* partition_of,
                           uint32_t* counts);

// Listing 3: gathers the rows of each partition from `input` and
// writes them contiguously into `output` (same total size); returns
// per-partition output offsets in map->offsets.
template <typename T>
void SwPartitionColumn(const T* input, const PartitionMap& map, T* output) {
  // For each partition p, gather its rows and emit sequentially.
  for (size_t i = 0; i < map.rids.size(); ++i) {
    output[i] = input[map.rids[i]];
  }
}

}  // namespace rapid::primitives

#endif  // RAPID_PRIMITIVES_PARTITION_MAP_H_
