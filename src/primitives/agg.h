// Aggregation primitives: tight loops computing SUM/MIN/MAX/COUNT over
// a tile, optionally restricted to rows selected by a bit vector.
// Bodies dispatch to the SIMD kernel tables (simd.h); every tier is
// bit-identical (integer sums commute under wraparound, min/max are
// order-independent).

#ifndef RAPID_PRIMITIVES_AGG_H_
#define RAPID_PRIMITIVES_AGG_H_

#include <cstddef>
#include <cstdint>

#include "common/bitvector.h"
#include "primitives/simd.h"

namespace rapid::primitives {

enum class AggOp { kSum, kMin, kMax, kCount };

struct AggState {
  int64_t sum = 0;
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  uint64_t count = 0;

  void Merge(const AggState& other) {
    sum += other.sum;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
    count += other.count;
  }
};

template <typename T>
void AggTile(const T* values, size_t n, AggState* state) {
  if constexpr (simd::kHasKernelTables<T>) {
    simd::agg_kernels<T>().tile(values, n, state);
  } else {
    for (size_t i = 0; i < n; ++i) {
      const int64_t v = static_cast<int64_t>(values[i]);
      state->sum += v;
      if (v < state->min) state->min = v;
      if (v > state->max) state->max = v;
    }
    state->count += n;
  }
}

template <typename T>
void AggTileSelected(const T* values, const BitVector& selected,
                     AggState* state) {
  if constexpr (simd::kHasKernelTables<T>) {
    simd::agg_kernels<T>().tile_selected(values, selected.words(),
                                         selected.num_words(), state);
  } else {
    for (size_t wi = 0; wi < selected.num_words(); ++wi) {
      uint64_t w = selected.words()[wi];
      while (w != 0) {
        const size_t row = wi * 64 + static_cast<size_t>(__builtin_ctzll(w));
        const int64_t v = static_cast<int64_t>(values[row]);
        state->sum += v;
        if (v < state->min) state->min = v;
        if (v > state->max) state->max = v;
        ++state->count;
        w &= (w - 1);
      }
    }
  }
}

// Grouped aggregation update: state[group[i]] += values[i] etc.
// Group ids must be < num_groups; state arrays are caller-allocated
// (typically in DMEM). Stays scalar: the per-row state gather/scatter
// is data-dependent (no AVX2 scatter exists).
template <typename T>
void AggTileGrouped(const T* values, const uint32_t* groups, size_t n,
                    AggState* states) {
  for (size_t i = 0; i < n; ++i) {
    AggState& st = states[groups[i]];
    const int64_t v = static_cast<int64_t>(values[i]);
    st.sum += v;
    if (v < st.min) st.min = v;
    if (v > st.max) st.max = v;
    ++st.count;
  }
}

}  // namespace rapid::primitives

#endif  // RAPID_PRIMITIVES_AGG_H_
