// Primitive catalog: the compile-time equivalent of RAPID's primitive
// generator framework (Section 5.1).
//
// In the paper, primitives are defined via C-like templates; a
// generator emits one C function per supported (operation, input type,
// output type) combination, which is compiled into the binary. Here
// the C++ templates *are* the generator: this catalog enumerates every
// instantiated combination under the paper's naming convention
// (e.g. "rpdmpr_bvflt_ub4_OPT_TYPE_EQ_cval" in Listing 1), so QComp's
// primitive-selection step and the QEP serializer can refer to
// primitives by name.

#ifndef RAPID_PRIMITIVES_REGISTRY_H_
#define RAPID_PRIMITIVES_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace rapid::primitives {

struct PrimitiveInfo {
  std::string name;      // generated function name
  std::string family;    // "filter", "arith", "hash", "agg", "partition"
  std::string operation; // "eq", "lt", "sum", ...
  int input_width = 0;   // bytes; 0 = width-independent
  bool rid_variant = false;  // RID-list flavour vs bit-vector flavour
};

class PrimitiveCatalog {
 public:
  static const PrimitiveCatalog& Instance();

  const std::vector<PrimitiveInfo>& primitives() const { return primitives_; }

  // Looks up a primitive by generated name.
  Result<PrimitiveInfo> Find(const std::string& name) const;

  // The instruction-set tier ("scalar", "sse42", "avx2") the named
  // primitive's kernel resolved to under the active SIMD level.
  // Evaluated on demand so tests can flip levels via ForceSimdLevel /
  // RAPID_SIMD and observe the substitution the cost model assumes.
  Result<std::string> ResolvedIsa(const std::string& name) const;

  // Name a filter primitive following the paper's convention, e.g.
  // FilterName("eq", 4, false) == "rpdmpr_bvflt_ub4_OPT_TYPE_EQ_cval".
  static std::string FilterName(const std::string& op, int width,
                                bool rid_variant);

 private:
  PrimitiveCatalog();
  std::vector<PrimitiveInfo> primitives_;
};

}  // namespace rapid::primitives

#endif  // RAPID_PRIMITIVES_REGISTRY_H_
