// The RAPID hash-join kernel (Sections 6.3 and 6.4, Figures 6 and 7).
//
// A compact, pointer-free bucket-chained hash table over DMEM-resident
// partitions:
//   * bucket count is a power of two, typically 2-4x smaller than the
//     row count (sized from NDV statistics),
//   * `hash-buckets` maps a bucket to the row offset of the *last*
//     inserted tuple with that hash,
//   * `link` chains tuples with equal hash backwards by row offset,
//   * both arrays store ceil(log2(N+1))-bit entries (CompactArray);
//     the all-ones value is the end-of-chain sentinel (the paper's
//     "111" in the 8-tuple example),
//   * bucket index = CRC32(key) & (buckets-1) — fast modulo by
//     bit-mask on the hardware-computed hash.
//
// DMEM & statistics resilience (Figure 7): the kernel is built with a
// DMEM row capacity; if the partition turns out bigger than QComp's
// estimate ("small skew"), rows beyond the capacity gracefully
// overflow into a DRAM-resident extension of the same
// buckets/link structure. Probes then consult both regions; DRAM
// accesses are costed higher by the caller via ProbeStats.
//
// The kernel stores row offsets only; key comparison happens against
// the caller's key arrays (DMEM tiles), keeping the kernel primitive
// type-agnostic.

#ifndef RAPID_PRIMITIVES_JOIN_KERNEL_H_
#define RAPID_PRIMITIVES_JOIN_KERNEL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/compact_array.h"
#include "common/crc32.h"
#include "common/logging.h"

namespace rapid::primitives {

// Vectorized bucket-index primitive: indices[i] = hashes[i] & mask
// (num_buckets must be a power of two). Dispatches to the SIMD
// partition kernels.
void ComputeBucketIndices(const uint32_t* hashes, size_t n, size_t num_buckets,
                          uint32_t* indices);

struct ProbeStats {
  uint64_t probes = 0;        // keys probed
  uint64_t chain_steps = 0;   // link-array traversals (DMEM)
  uint64_t overflow_steps = 0;  // bucket/link accesses in the DRAM region
  uint64_t matches = 0;       // emitted result pairs

  void Merge(const ProbeStats& other) {
    probes += other.probes;
    chain_steps += other.chain_steps;
    overflow_steps += other.overflow_steps;
    matches += other.matches;
  }
};

class CompactJoinTable {
 public:
  // `num_rows`: build-side rows of this partition (may exceed the
  //   estimate; see dmem_capacity_rows).
  // `num_buckets`: power of two; QComp picks rows/2 .. rows/4 rounded
  //   to a power of two based on NDV.
  // `dmem_capacity_rows`: rows that fit in the DMEM budget. Rows with
  //   offset >= capacity live in the DRAM overflow region.
  CompactJoinTable(size_t num_rows, size_t num_buckets,
                   size_t dmem_capacity_rows);

  // Inserts the build tuple at `row_offset` with hash `hash`.
  // Offsets must be inserted 0,1,2,... (the build scan order).
  void Insert(uint32_t hash, size_t row_offset);

  // Probes one key; calls emit(build_row_offset) for every build row
  // whose key matches. `key_eq(offset)` performs the key comparison
  // against the caller's build-key storage.
  template <typename KeyEq, typename Emit>
  void Probe(uint32_t hash, KeyEq&& key_eq, Emit&& emit, ProbeStats* stats) {
    ++stats->probes;
    const size_t bucket = hash & bucket_mask_;
    // DMEM region chain.
    WalkChain(dmem_buckets_.Get(bucket), dmem_sentinel_, /*overflow=*/false,
              key_eq, emit, stats);
    if (overflow_rows_ > 0) {
      // DRAM overflow region chain (Figure 7(b): second hash-buckets
      // version + link continuation in DRAM).
      WalkChain(dram_buckets_[bucket], kDramSentinel, /*overflow=*/true,
                key_eq, emit, stats);
    }
  }

  // Batched probe over a tile of hashes — the tile-granularity entry
  // point used by the pipelined executor (one call per DMEM tile
  // instead of one per row). For probe row i, calls key_eq(i, brow)
  // to compare keys and emit(i, brow) for every match; match_counts[i]
  // receives the number of matches for row i. Rows are processed in
  // order, so emission order equals the per-row Probe loop.
  template <typename KeyEq, typename Emit>
  void ProbeBatch(const uint32_t* hashes, size_t n, KeyEq&& key_eq,
                  Emit&& emit, uint32_t* match_counts, ProbeStats* stats) {
    stats->probes += n;
    // Bucket indices are precomputed per chunk with the vectorized
    // kernel, hoisting the hash->bucket mapping out of the chain-walk
    // inner loop; rows are still visited in order, so emission order
    // equals the per-row Probe loop.
    constexpr size_t kChunkRows = 256;
    uint32_t buckets[kChunkRows];
    for (size_t base = 0; base < n; base += kChunkRows) {
      const size_t rows = std::min(kChunkRows, n - base);
      ComputeBucketIndices(hashes + base, rows, num_buckets_, buckets);
      for (size_t r = 0; r < rows; ++r) {
        const size_t i = base + r;
        uint32_t count = 0;
        const size_t bucket = buckets[r];
        auto row_eq = [&](size_t brow) { return key_eq(i, brow); };
        auto row_emit = [&](size_t brow) {
          ++count;
          emit(i, brow);
        };
        WalkChain(dmem_buckets_.Get(bucket), dmem_sentinel_, /*overflow=*/false,
                  row_eq, row_emit, stats);
        if (overflow_rows_ > 0) {
          WalkChain(dram_buckets_[bucket], kDramSentinel, /*overflow=*/true,
                    row_eq, row_emit, stats);
        }
        match_counts[i] = count;
      }
    }
  }

  size_t num_rows() const { return num_rows_; }
  size_t num_buckets() const { return num_buckets_; }
  size_t dmem_rows() const { return dmem_rows_; }
  size_t overflow_rows() const { return overflow_rows_; }
  bool overflowed() const { return overflow_rows_ > 0; }

  // DMEM bytes consumed by the compact arrays — what op_dmem_size
  // charges for the kernel.
  size_t DmemBytes() const {
    return dmem_buckets_.byte_size() + dmem_link_.byte_size();
  }

  // Bit width of the compact entries: ceil(log2(capacity+1)).
  int entry_bits() const { return dmem_link_.bit_width(); }

 private:
  static constexpr uint64_t kDramSentinel = ~uint64_t{0};

  template <typename KeyEq, typename Emit>
  void WalkChain(uint64_t head, uint64_t sentinel, bool overflow,
                 KeyEq&& key_eq, Emit&& emit, ProbeStats* stats) {
    uint64_t offset = head;
    while (offset != sentinel) {
      if (overflow) {
        ++stats->overflow_steps;
      } else {
        ++stats->chain_steps;
      }
      if (key_eq(static_cast<size_t>(offset))) {
        ++stats->matches;
        emit(static_cast<size_t>(offset));
      }
      offset = overflow ? dram_link_[offset - dmem_capacity_]
                        : dmem_link_.Get(offset);
    }
  }

  size_t num_rows_ = 0;
  size_t num_buckets_ = 0;
  size_t bucket_mask_ = 0;
  size_t dmem_capacity_ = 0;

  // DMEM region: compact bit-packed arrays.
  CompactArray dmem_buckets_;
  CompactArray dmem_link_;
  uint64_t dmem_sentinel_ = 0;
  size_t dmem_rows_ = 0;

  // DRAM overflow region (plain arrays; DRAM is not bit-budgeted).
  std::vector<uint64_t> dram_buckets_;
  std::vector<uint64_t> dram_link_;
  size_t overflow_rows_ = 0;
};

}  // namespace rapid::primitives

#endif  // RAPID_PRIMITIVES_JOIN_KERNEL_H_
