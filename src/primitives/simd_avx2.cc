// AVX2 kernel tier — the primary BVLD/FILT substitution (Section 5.4,
// Listing 1): 256-bit predicate evaluation producing BitVector words
// directly, plus aggregation, arithmetic projection and partition-map
// kernels. Same structure as simd_sse42.cc: kernels and their
// explicit instantiations live inside the `#pragma GCC target`
// region; the overlay functions below are baseline code that only
// installs pointers.
//
// Mask-building per element width (rows per 64-bit BitVector word):
//   *  8-bit: _mm256_movemask_epi8 -> 32 bits/vec, 2 vecs/word;
//   * 16-bit: compare pairs, _mm256_packs_epi16 + permute4x64(0xD8)
//             (packs interleaves 128-bit lanes; the permute restores
//             row order), movemask_epi8 -> 32 bits per 2 vecs;
//   * 32-bit: movemask_ps -> 8 bits/vec, 8 vecs/word;
//   * 64-bit: movemask_pd -> 4 bits/vec, 16 vecs/word.
// Unsigned ordered compares XOR the sign bit of both operands and use
// the signed compare. ne/le/ge complement the eq/gt/lt word; tails
// (n & 63) use the masked scalar word builders, so tail bits above n
// are always zero.

#include <cstddef>
#include <cstdint>

#include "primitives/agg.h"
#include "primitives/simd.h"
#include "primitives/simd_isa.h"
#include "primitives/simd_scalar.h"

#if defined(__x86_64__)
#define RAPID_SIMD_X86_64 1
#endif

#if defined(RAPID_SIMD_X86_64)

#pragma GCC push_options
#pragma GCC target("avx2")
#include <immintrin.h>

namespace rapid::primitives::simd::avx2_impl {

// ---- Per-type vector traits ----------------------------------------------

template <typename T>
struct V;

static inline __m256i Load256(const void* p) {
  return _mm256_loadu_si256(static_cast<const __m256i*>(p));
}

template <>
struct V<int8_t> {
  static constexpr int kStepRows = 32;
  using Vec = __m256i;
  static inline Vec Bcast(int8_t c) { return _mm256_set1_epi8(c); }
  static inline Vec Load(const int8_t* p) { return Load256(p); }
  static inline uint64_t MaskEq(Vec a, Vec b) {
    return static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(a, b)));
  }
  static inline uint64_t MaskGt(Vec a, Vec b) {
    return static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_cmpgt_epi8(a, b)));
  }
};

template <>
struct V<uint8_t> {
  static constexpr int kStepRows = 32;
  using Vec = __m256i;
  static inline Vec Flip(Vec v) {
    return _mm256_xor_si256(v, _mm256_set1_epi8(static_cast<char>(0x80)));
  }
  static inline Vec Bcast(uint8_t c) {
    return Flip(_mm256_set1_epi8(static_cast<char>(c)));
  }
  static inline Vec Load(const uint8_t* p) { return Flip(Load256(p)); }
  static inline uint64_t MaskEq(Vec a, Vec b) { return V<int8_t>::MaskEq(a, b); }
  static inline uint64_t MaskGt(Vec a, Vec b) { return V<int8_t>::MaskGt(a, b); }
};

// 16-bit compares span two vectors so the packed mask covers 32 rows.
struct Vec16Pair {
  __m256i a, b;
};

static inline uint64_t Pack16Masks(__m256i m0, __m256i m1) {
  __m256i packed = _mm256_packs_epi16(m0, m1);
  packed = _mm256_permute4x64_epi64(packed, 0xD8);  // _MM_SHUFFLE(3,1,2,0)
  return static_cast<uint32_t>(_mm256_movemask_epi8(packed));
}

template <>
struct V<int16_t> {
  static constexpr int kStepRows = 32;
  using Vec = Vec16Pair;
  static inline Vec Bcast(int16_t c) {
    const __m256i v = _mm256_set1_epi16(c);
    return {v, v};
  }
  static inline Vec Load(const int16_t* p) {
    return {Load256(p), Load256(p + 16)};
  }
  static inline uint64_t MaskEq(Vec x, Vec y) {
    return Pack16Masks(_mm256_cmpeq_epi16(x.a, y.a),
                       _mm256_cmpeq_epi16(x.b, y.b));
  }
  static inline uint64_t MaskGt(Vec x, Vec y) {
    return Pack16Masks(_mm256_cmpgt_epi16(x.a, y.a),
                       _mm256_cmpgt_epi16(x.b, y.b));
  }
};

template <>
struct V<uint16_t> {
  static constexpr int kStepRows = 32;
  using Vec = Vec16Pair;
  static inline __m256i Flip(__m256i v) {
    return _mm256_xor_si256(v, _mm256_set1_epi16(static_cast<short>(0x8000)));
  }
  static inline Vec Bcast(uint16_t c) {
    const __m256i v = Flip(_mm256_set1_epi16(static_cast<short>(c)));
    return {v, v};
  }
  static inline Vec Load(const uint16_t* p) {
    return {Flip(Load256(p)), Flip(Load256(p + 16))};
  }
  static inline uint64_t MaskEq(Vec x, Vec y) { return V<int16_t>::MaskEq(x, y); }
  static inline uint64_t MaskGt(Vec x, Vec y) { return V<int16_t>::MaskGt(x, y); }
};

template <>
struct V<int32_t> {
  static constexpr int kStepRows = 8;
  using Vec = __m256i;
  static inline Vec Bcast(int32_t c) { return _mm256_set1_epi32(c); }
  static inline Vec Load(const int32_t* p) { return Load256(p); }
  static inline uint64_t MaskEq(Vec a, Vec b) {
    return static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(a, b))));
  }
  static inline uint64_t MaskGt(Vec a, Vec b) {
    return static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(a, b))));
  }
};

template <>
struct V<uint32_t> {
  static constexpr int kStepRows = 8;
  using Vec = __m256i;
  static inline Vec Flip(Vec v) {
    return _mm256_xor_si256(v,
                            _mm256_set1_epi32(static_cast<int32_t>(0x80000000u)));
  }
  static inline Vec Bcast(uint32_t c) {
    return Flip(_mm256_set1_epi32(static_cast<int32_t>(c)));
  }
  static inline Vec Load(const uint32_t* p) { return Flip(Load256(p)); }
  static inline uint64_t MaskEq(Vec a, Vec b) { return V<int32_t>::MaskEq(a, b); }
  static inline uint64_t MaskGt(Vec a, Vec b) { return V<int32_t>::MaskGt(a, b); }
};

template <>
struct V<int64_t> {
  static constexpr int kStepRows = 4;
  using Vec = __m256i;
  static inline Vec Bcast(int64_t c) { return _mm256_set1_epi64x(c); }
  static inline Vec Load(const int64_t* p) { return Load256(p); }
  static inline uint64_t MaskEq(Vec a, Vec b) {
    return static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(a, b))));
  }
  static inline uint64_t MaskGt(Vec a, Vec b) {
    return static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(a, b))));
  }
};

template <>
struct V<uint64_t> {
  static constexpr int kStepRows = 4;
  using Vec = __m256i;
  static inline Vec Flip(Vec v) {
    return _mm256_xor_si256(v, _mm256_set1_epi64x(INT64_MIN));
  }
  static inline Vec Bcast(uint64_t c) {
    return Flip(_mm256_set1_epi64x(static_cast<int64_t>(c)));
  }
  static inline Vec Load(const uint64_t* p) { return Flip(Load256(p)); }
  static inline uint64_t MaskEq(Vec a, Vec b) { return V<int64_t>::MaskEq(a, b); }
  static inline uint64_t MaskGt(Vec a, Vec b) { return V<int64_t>::MaskGt(a, b); }
};

// ---- Whole-word drivers ---------------------------------------------------

template <CmpOp op, typename T>
static inline uint64_t ConstWord64(const T* p, const typename V<T>::Vec c) {
  using VT = V<T>;
  uint64_t bits = 0;
  for (int k = 0; k < 64 / VT::kStepRows; ++k) {
    const T* q = p + k * VT::kStepRows;
    uint64_t m;
    if constexpr (op == CmpOp::kEq || op == CmpOp::kNe) {
      m = VT::MaskEq(VT::Load(q), c);
    } else if constexpr (op == CmpOp::kGt || op == CmpOp::kLe) {
      m = VT::MaskGt(VT::Load(q), c);
    } else {
      m = VT::MaskGt(c, VT::Load(q));
    }
    bits |= m << (k * VT::kStepRows);
  }
  if constexpr (op == CmpOp::kNe || op == CmpOp::kLe || op == CmpOp::kGe) {
    bits = ~bits;
  }
  return bits;
}

template <CmpOp op, typename T>
static inline uint64_t ColColWord64(const T* a, const T* b) {
  using VT = V<T>;
  uint64_t bits = 0;
  for (int k = 0; k < 64 / VT::kStepRows; ++k) {
    const T* qa = a + k * VT::kStepRows;
    const T* qb = b + k * VT::kStepRows;
    uint64_t m;
    if constexpr (op == CmpOp::kEq || op == CmpOp::kNe) {
      m = VT::MaskEq(VT::Load(qa), VT::Load(qb));
    } else if constexpr (op == CmpOp::kGt || op == CmpOp::kLe) {
      m = VT::MaskGt(VT::Load(qa), VT::Load(qb));
    } else {
      m = VT::MaskGt(VT::Load(qb), VT::Load(qa));
    }
    bits |= m << (k * VT::kStepRows);
  }
  if constexpr (op == CmpOp::kNe || op == CmpOp::kLe || op == CmpOp::kGe) {
    bits = ~bits;
  }
  return bits;
}

// ---- Filter kernels -------------------------------------------------------

template <CmpOp op, typename T>
void FilterConstBv(const T* values, size_t n, T constant, uint64_t* words) {
  const typename V<T>::Vec c = V<T>::Bcast(constant);
  size_t i = 0, w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    words[w] = ConstWord64<op, T>(values + i, c);
  }
  if (i < n) words[w] = CmpConstWord<op, T>(values + i, n - i, constant);
}

template <CmpOp op, typename T>
void FilterColColBv(const T* left, const T* right, size_t n, uint64_t* words) {
  size_t i = 0, w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    words[w] = ColColWord64<op, T>(left + i, right + i);
  }
  if (i < n) words[w] = CmpColColWord<op, T>(left + i, right + i, n - i);
}

template <typename T>
void FilterBetweenBv(const T* values, size_t n, T lo, T hi, uint64_t* words) {
  using VT = V<T>;
  const typename VT::Vec vlo = VT::Bcast(lo);
  const typename VT::Vec vhi = VT::Bcast(hi);
  size_t i = 0, w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    // in [lo, hi]  ==  !(v < lo || v > hi)
    uint64_t below = 0, above = 0;
    for (int k = 0; k < 64 / VT::kStepRows; ++k) {
      const T* q = values + i + k * VT::kStepRows;
      const typename VT::Vec v = VT::Load(q);
      below |= VT::MaskGt(vlo, v) << (k * VT::kStepRows);
      above |= VT::MaskGt(v, vhi) << (k * VT::kStepRows);
    }
    words[w] = ~(below | above);
  }
  if (i < n) words[w] = BetweenWord<T>(values + i, n - i, lo, hi);
}

#define RAPID_AVX2_INSTANTIATE_FILTER(T)                                      \
  template void FilterConstBv<CmpOp::kEq, T>(const T*, size_t, T, uint64_t*); \
  template void FilterConstBv<CmpOp::kNe, T>(const T*, size_t, T, uint64_t*); \
  template void FilterConstBv<CmpOp::kLt, T>(const T*, size_t, T, uint64_t*); \
  template void FilterConstBv<CmpOp::kLe, T>(const T*, size_t, T, uint64_t*); \
  template void FilterConstBv<CmpOp::kGt, T>(const T*, size_t, T, uint64_t*); \
  template void FilterConstBv<CmpOp::kGe, T>(const T*, size_t, T, uint64_t*); \
  template void FilterColColBv<CmpOp::kEq, T>(const T*, const T*, size_t,     \
                                              uint64_t*);                     \
  template void FilterColColBv<CmpOp::kNe, T>(const T*, const T*, size_t,     \
                                              uint64_t*);                     \
  template void FilterColColBv<CmpOp::kLt, T>(const T*, const T*, size_t,     \
                                              uint64_t*);                     \
  template void FilterColColBv<CmpOp::kLe, T>(const T*, const T*, size_t,     \
                                              uint64_t*);                     \
  template void FilterColColBv<CmpOp::kGt, T>(const T*, const T*, size_t,     \
                                              uint64_t*);                     \
  template void FilterColColBv<CmpOp::kGe, T>(const T*, const T*, size_t,     \
                                              uint64_t*);                     \
  template void FilterBetweenBv<T>(const T*, size_t, T, T, uint64_t*);

RAPID_SIMD_FOR_EACH_TYPE(RAPID_AVX2_INSTANTIATE_FILTER)
#undef RAPID_AVX2_INSTANTIATE_FILTER

// ---- Aggregation kernels --------------------------------------------------
// Lane-partial sums/mins/maxes reduced after the loop; integer
// addition commutes under wraparound and min/max are
// order-independent, so results are bit-identical to the scalar
// left-to-right loop. The vector accumulators are only merged when
// the vector loop ran — otherwise an empty tile would clamp
// state->min/max with the identity values.

static inline int64_t HSum64(__m256i v) {
  const __m128i s =
      _mm_add_epi64(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  return static_cast<int64_t>(
      static_cast<uint64_t>(_mm_cvtsi128_si64(s)) +
      static_cast<uint64_t>(_mm_extract_epi64(s, 1)));
}

static inline int32_t HMin32(__m256i v) {
  __m128i m = _mm_min_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  m = _mm_min_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(1, 0, 3, 2)));
  m = _mm_min_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(m);
}

static inline int32_t HMax32(__m256i v) {
  __m128i m = _mm_max_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  m = _mm_max_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(1, 0, 3, 2)));
  m = _mm_max_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(m);
}

static inline uint32_t HMinU32(__m256i v) {
  __m128i m = _mm_min_epu32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  m = _mm_min_epu32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(1, 0, 3, 2)));
  m = _mm_min_epu32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<uint32_t>(_mm_cvtsi128_si32(m));
}

static inline uint32_t HMaxU32(__m256i v) {
  __m128i m = _mm_max_epu32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  m = _mm_max_epu32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(1, 0, 3, 2)));
  m = _mm_max_epu32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<uint32_t>(_mm_cvtsi128_si32(m));
}

static inline int64_t HMin64(__m256i v) {
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  int64_t m = lanes[0];
  if (lanes[1] < m) m = lanes[1];
  if (lanes[2] < m) m = lanes[2];
  if (lanes[3] < m) m = lanes[3];
  return m;
}

static inline int64_t HMax64(__m256i v) {
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  int64_t m = lanes[0];
  if (lanes[1] > m) m = lanes[1];
  if (lanes[2] > m) m = lanes[2];
  if (lanes[3] > m) m = lanes[3];
  return m;
}

void AggTileI32(const int32_t* values, size_t n, AggState* state) {
  size_t i = 0;
  if (n >= 8) {
    __m256i sum0 = _mm256_setzero_si256();
    __m256i sum1 = _mm256_setzero_si256();
    __m256i vmin = _mm256_set1_epi32(INT32_MAX);
    __m256i vmax = _mm256_set1_epi32(INT32_MIN);
    for (; i + 8 <= n; i += 8) {
      const __m256i v = Load256(values + i);
      sum0 = _mm256_add_epi64(
          sum0, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v)));
      sum1 = _mm256_add_epi64(
          sum1, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1)));
      vmin = _mm256_min_epi32(vmin, v);
      vmax = _mm256_max_epi32(vmax, v);
    }
    state->sum += HSum64(_mm256_add_epi64(sum0, sum1));
    const int64_t mn = HMin32(vmin);
    const int64_t mx = HMax32(vmax);
    if (mn < state->min) state->min = mn;
    if (mx > state->max) state->max = mx;
  }
  for (; i < n; ++i) {
    const int64_t v = static_cast<int64_t>(values[i]);
    state->sum += v;
    if (v < state->min) state->min = v;
    if (v > state->max) state->max = v;
  }
  state->count += n;
}

void AggTileU32(const uint32_t* values, size_t n, AggState* state) {
  size_t i = 0;
  if (n >= 8) {
    __m256i sum0 = _mm256_setzero_si256();
    __m256i sum1 = _mm256_setzero_si256();
    __m256i vmin = _mm256_set1_epi32(static_cast<int32_t>(0xFFFFFFFFu));
    __m256i vmax = _mm256_setzero_si256();
    for (; i + 8 <= n; i += 8) {
      const __m256i v = Load256(values + i);
      sum0 = _mm256_add_epi64(
          sum0, _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v)));
      sum1 = _mm256_add_epi64(
          sum1, _mm256_cvtepu32_epi64(_mm256_extracti128_si256(v, 1)));
      vmin = _mm256_min_epu32(vmin, v);
      vmax = _mm256_max_epu32(vmax, v);
    }
    state->sum += HSum64(_mm256_add_epi64(sum0, sum1));
    const int64_t mn = static_cast<int64_t>(HMinU32(vmin));
    const int64_t mx = static_cast<int64_t>(HMaxU32(vmax));
    if (mn < state->min) state->min = mn;
    if (mx > state->max) state->max = mx;
  }
  for (; i < n; ++i) {
    const int64_t v = static_cast<int64_t>(values[i]);
    state->sum += v;
    if (v < state->min) state->min = v;
    if (v > state->max) state->max = v;
  }
  state->count += n;
}

void AggTileI64(const int64_t* values, size_t n, AggState* state) {
  size_t i = 0;
  if (n >= 4) {
    __m256i sum = _mm256_setzero_si256();
    __m256i vmin = _mm256_set1_epi64x(INT64_MAX);
    __m256i vmax = _mm256_set1_epi64x(INT64_MIN);
    for (; i + 4 <= n; i += 4) {
      const __m256i v = Load256(values + i);
      sum = _mm256_add_epi64(sum, v);
      vmin = _mm256_blendv_epi8(vmin, v, _mm256_cmpgt_epi64(vmin, v));
      vmax = _mm256_blendv_epi8(vmax, v, _mm256_cmpgt_epi64(v, vmax));
    }
    state->sum += HSum64(sum);
    const int64_t mn = HMin64(vmin);
    const int64_t mx = HMax64(vmax);
    if (mn < state->min) state->min = mn;
    if (mx > state->max) state->max = mx;
  }
  // GCC's auto-vectorizer warns about a hypothetical 2^61-iteration
  // pointer overflow here; n is bounded by the address space / 8.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Waggressive-loop-optimizations"
  for (; i < n; ++i) {
    const int64_t v = values[i];
    // Wrapping add (matches HSum64); avoids signed-overflow UB.
    state->sum = static_cast<int64_t>(static_cast<uint64_t>(state->sum) +
                                      static_cast<uint64_t>(v));
    if (v < state->min) state->min = v;
    if (v > state->max) state->max = v;
  }
#pragma GCC diagnostic pop
  state->count += n;
}

// AggState compares static_cast<int64_t>(value), so uint64 aggregation
// is the int64 kernel over the same bit patterns (int64_t and uint64_t
// may alias).
void AggTileU64(const uint64_t* values, size_t n, AggState* state) {
  AggTileI64(reinterpret_cast<const int64_t*>(values), n, state);
}

// Selected variants: all-ones words (fully-qualifying 64-row blocks)
// run through the vector tile kernel; sparse words use the scalar
// bit-scan. Row order is preserved either way.
#define RAPID_AVX2_AGG_SELECTED(NAME, T, FULL_TILE)                           \
  void NAME(const T* values, const uint64_t* words, size_t num_words,         \
            AggState* state) {                                                \
    for (size_t wi = 0; wi < num_words; ++wi) {                               \
      uint64_t w = words[wi];                                                 \
      if (w == ~uint64_t{0}) {                                                \
        FULL_TILE(values + wi * 64, 64, state);                               \
        continue;                                                             \
      }                                                                       \
      while (w != 0) {                                                        \
        const size_t row = wi * 64 + static_cast<size_t>(__builtin_ctzll(w)); \
        const int64_t v = static_cast<int64_t>(values[row]);                  \
        state->sum += v;                                                      \
        if (v < state->min) state->min = v;                                   \
        if (v > state->max) state->max = v;                                   \
        ++state->count;                                                       \
        w &= (w - 1);                                                         \
      }                                                                       \
    }                                                                         \
  }

RAPID_AVX2_AGG_SELECTED(AggTileSelectedI32, int32_t, AggTileI32)
RAPID_AVX2_AGG_SELECTED(AggTileSelectedU32, uint32_t, AggTileU32)
RAPID_AVX2_AGG_SELECTED(AggTileSelectedI64, int64_t, AggTileI64)
RAPID_AVX2_AGG_SELECTED(AggTileSelectedU64, uint64_t, AggTileU64)
#undef RAPID_AVX2_AGG_SELECTED

// ---- Arithmetic kernels ---------------------------------------------------
// Signed and unsigned add/sub/mul share instructions (two's-complement
// wraparound); 64-bit low multiply is emulated as
// lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32).

static inline __m256i MulLow64(__m256i a, __m256i b) {
  const __m256i ahi = _mm256_srli_epi64(a, 32);
  const __m256i bhi = _mm256_srli_epi64(b, 32);
  const __m256i albl = _mm256_mul_epu32(a, b);
  const __m256i albh = _mm256_mul_epu32(a, bhi);
  const __m256i ahbl = _mm256_mul_epu32(ahi, b);
  const __m256i hi = _mm256_slli_epi64(_mm256_add_epi64(albh, ahbl), 32);
  return _mm256_add_epi64(albl, hi);
}

template <typename T>
struct A;

struct A32 {
  static constexpr int kLanes = 8;
  template <ArithOp op>
  static inline __m256i Op(__m256i a, __m256i b) {
    if constexpr (op == ArithOp::kAdd) return _mm256_add_epi32(a, b);
    if constexpr (op == ArithOp::kSub) return _mm256_sub_epi32(a, b);
    if constexpr (op == ArithOp::kMul) return _mm256_mullo_epi32(a, b);
  }
};

struct A64 {
  static constexpr int kLanes = 4;
  template <ArithOp op>
  static inline __m256i Op(__m256i a, __m256i b) {
    if constexpr (op == ArithOp::kAdd) return _mm256_add_epi64(a, b);
    if constexpr (op == ArithOp::kSub) return _mm256_sub_epi64(a, b);
    if constexpr (op == ArithOp::kMul) return MulLow64(a, b);
  }
};

template <>
struct A<int32_t> : A32 {
  static inline __m256i Bcast(int32_t c) { return _mm256_set1_epi32(c); }
};
template <>
struct A<uint32_t> : A32 {
  static inline __m256i Bcast(uint32_t c) {
    return _mm256_set1_epi32(static_cast<int32_t>(c));
  }
};
template <>
struct A<int64_t> : A64 {
  static inline __m256i Bcast(int64_t c) { return _mm256_set1_epi64x(c); }
};
template <>
struct A<uint64_t> : A64 {
  static inline __m256i Bcast(uint64_t c) {
    return _mm256_set1_epi64x(static_cast<int64_t>(c));
  }
};

template <ArithOp op, typename T>
void ArithColCol(const T* left, const T* right, size_t n, T* out) {
  using AT = A<T>;
  size_t i = 0;
  for (; i + AT::kLanes <= n; i += AT::kLanes) {
    const __m256i v =
        AT::template Op<op>(Load256(left + i), Load256(right + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  for (; i < n; ++i) out[i] = Apply<op, T>(left[i], right[i]);
}

template <ArithOp op, typename T>
void ArithColConst(const T* values, size_t n, T constant, T* out) {
  using AT = A<T>;
  const __m256i c = AT::Bcast(constant);
  size_t i = 0;
  for (; i + AT::kLanes <= n; i += AT::kLanes) {
    const __m256i v = AT::template Op<op>(Load256(values + i), c);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  for (; i < n; ++i) out[i] = Apply<op, T>(values[i], constant);
}

#define RAPID_AVX2_INSTANTIATE_ARITH(T)                                        \
  template void ArithColCol<ArithOp::kAdd, T>(const T*, const T*, size_t, T*); \
  template void ArithColCol<ArithOp::kSub, T>(const T*, const T*, size_t, T*); \
  template void ArithColCol<ArithOp::kMul, T>(const T*, const T*, size_t, T*); \
  template void ArithColConst<ArithOp::kAdd, T>(const T*, size_t, T, T*);      \
  template void ArithColConst<ArithOp::kSub, T>(const T*, size_t, T, T*);      \
  template void ArithColConst<ArithOp::kMul, T>(const T*, size_t, T, T*);

RAPID_AVX2_INSTANTIATE_ARITH(int32_t)
RAPID_AVX2_INSTANTIATE_ARITH(uint32_t)
RAPID_AVX2_INSTANTIATE_ARITH(int64_t)
RAPID_AVX2_INSTANTIATE_ARITH(uint64_t)
#undef RAPID_AVX2_INSTANTIATE_ARITH

// ---- RLE expansion kernels ------------------------------------------------
// Broadcast the run value into a 256-bit register once per run, then
// fill with unaligned stores; rows past the last full vector store
// scalar. Covers all 8 widths (splat exists at every element size).

template <typename T>
void RleExpand(const T* run_values, const uint32_t* run_lengths,
               size_t num_runs, T* out) {
  constexpr size_t kLane = 32 / sizeof(T);
  for (size_t r = 0; r < num_runs; ++r) {
    const T value = run_values[r];
    const uint32_t length = run_lengths[r];
    __m256i splat;
    if constexpr (sizeof(T) == 1) {
      splat = _mm256_set1_epi8(static_cast<char>(value));
    } else if constexpr (sizeof(T) == 2) {
      splat = _mm256_set1_epi16(static_cast<short>(value));
    } else if constexpr (sizeof(T) == 4) {
      splat = _mm256_set1_epi32(static_cast<int32_t>(value));
    } else {
      splat = _mm256_set1_epi64x(static_cast<int64_t>(value));
    }
    size_t i = 0;
    for (; i + kLane <= length; i += kLane) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), splat);
    }
    for (; i < length; ++i) out[i] = value;
    out += length;
  }
}

#define RAPID_AVX2_INSTANTIATE_RLE(T) \
  template void RleExpand<T>(const T*, const uint32_t*, size_t, T*);
RAPID_SIMD_FOR_EACH_TYPE(RAPID_AVX2_INSTANTIATE_RLE)
#undef RAPID_AVX2_INSTANTIATE_RLE

// ---- Bloom probe kernels --------------------------------------------------
// One key per iteration: the eight salted lane positions come from one
// mullo/srli pair, widen to two 4x64 shift counts, and become bit
// masks via sllv; the block test is then two AND+CMPEQ pairs over the
// block's 64 bytes. Mix64 itself stays scalar (a serial multiply
// chain feeding the vector part). Exact integer math throughout, so
// the output is bit-identical to the scalar twin.

template <typename T>
void BloomProbeBv(const T* values, size_t n, const uint64_t* blocks,
                  uint32_t block_mask, uint64_t* words) {
  const __m256i salts =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kBloomSalt));
  const __m256i ones = _mm256_set1_epi64x(1);
  const size_t num_words = (n + 63) / 64;
  for (size_t wi = 0; wi < num_words; ++wi) {
    const size_t base = wi * 64;
    const size_t rows = n - base < 64 ? n - base : 64;
    uint64_t w = 0;
    for (size_t i = 0; i < rows; ++i) {
      const uint64_t h = Mix64(static_cast<uint64_t>(values[base + i]));
      const uint64_t* block =
          blocks + BloomBlockIndex(h, block_mask) * kBloomLanes;
      const __m256i pos32 = _mm256_srli_epi32(
          _mm256_mullo_epi32(
              _mm256_set1_epi32(static_cast<int32_t>(static_cast<uint32_t>(h))),
              salts),
          26);
      const __m256i pos_lo =
          _mm256_cvtepu32_epi64(_mm256_castsi256_si128(pos32));
      const __m256i pos_hi =
          _mm256_cvtepu32_epi64(_mm256_extracti128_si256(pos32, 1));
      const __m256i mask_lo = _mm256_sllv_epi64(ones, pos_lo);
      const __m256i mask_hi = _mm256_sllv_epi64(ones, pos_hi);
      const __m256i hit_lo = _mm256_cmpeq_epi64(
          _mm256_and_si256(Load256(block), mask_lo), mask_lo);
      const __m256i hit_hi = _mm256_cmpeq_epi64(
          _mm256_and_si256(Load256(block + 4), mask_hi), mask_hi);
      const int mm = _mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_and_si256(hit_lo, hit_hi)));
      w |= static_cast<uint64_t>(mm == 0xF) << i;
    }
    words[wi] = w;
  }
}

#define RAPID_AVX2_INSTANTIATE_BLOOM(T)                               \
  template void BloomProbeBv<T>(const T*, size_t, const uint64_t*,    \
                                uint32_t, uint64_t*);
RAPID_SIMD_FOR_EACH_TYPE(RAPID_AVX2_INSTANTIATE_BLOOM)
#undef RAPID_AVX2_INSTANTIATE_BLOOM

// ---- Partition kernels ----------------------------------------------------

// (hash >> shift) & mask for 16 rows per iteration, packed to uint16
// with _mm256_packus_epi32 + permute4x64(0xD8) to restore row order.
// packus saturates above 0xFFFF, so larger masks (fanout > 65536,
// beyond the uint16 partition id space anyway) use the scalar loop.
void PartitionOfAvx2(const uint32_t* hashes, size_t n, int shift,
                     uint32_t mask, uint16_t* out) {
  if (mask > 0xFFFFu) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint16_t>((hashes[i] >> shift) & mask);
    }
    return;
  }
  const __m128i sh = _mm_cvtsi32_si128(shift);
  const __m256i m = _mm256_set1_epi32(static_cast<int32_t>(mask));
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i a =
        _mm256_and_si256(_mm256_srl_epi32(Load256(hashes + i), sh), m);
    const __m256i b =
        _mm256_and_si256(_mm256_srl_epi32(Load256(hashes + i + 8), sh), m);
    __m256i packed = _mm256_packus_epi32(a, b);
    packed = _mm256_permute4x64_epi64(packed, 0xD8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), packed);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<uint16_t>((hashes[i] >> shift) & mask);
  }
}

void BucketIndicesAvx2(const uint32_t* hashes, size_t n, uint32_t mask,
                       uint32_t* indices) {
  const __m256i m = _mm256_set1_epi32(static_cast<int32_t>(mask));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(indices + i),
                        _mm256_and_si256(Load256(hashes + i), m));
  }
  for (; i < n; ++i) indices[i] = hashes[i] & mask;
}

// Software write-combining scatter (the Balkesen et al. radix
// partitioning trick): rows are staged in one 64-byte buffer per
// partition and full lines are flushed with non-temporal streaming
// stores, so the scatter never pulls destination lines into the cache
// and the TLB only sees one hot page per partition at a time.
//
// Streaming stores require 32-byte-aligned targets, but dst[p] is
// only 8-byte aligned in general; the first head[p] =
// rows-to-64B-boundary rows of each partition are stored scalar, after
// which every full-line flush lands 64-byte aligned. Partial tail
// lines drain scalar. Row order within a partition is the tile order
// either way, so the output is bit-identical to ScalarScatterCol.
void ScatterColWcAvx2(const int64_t* input, const uint16_t* partition_of,
                      size_t n, size_t fanout, int64_t* const* dst,
                      uint8_t* wc) {
  constexpr size_t kLine = kWcLineBytes / sizeof(int64_t);  // 8 rows
  auto* lines = reinterpret_cast<int64_t*>(wc);
  auto* fill = reinterpret_cast<uint32_t*>(wc + fanout * kWcLineBytes);
  auto* head = fill + fanout;
  auto* written = reinterpret_cast<uint64_t*>(head + fanout);
  for (size_t p = 0; p < fanout; ++p) {
    fill[p] = 0;
    written[p] = 0;
    const auto addr = reinterpret_cast<uintptr_t>(dst[p]);
    head[p] = static_cast<uint32_t>(((kWcLineBytes - (addr & 63)) & 63) /
                                    sizeof(int64_t));
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t p = partition_of[i];
    if (written[p] < head[p]) {
      dst[p][written[p]++] = input[i];
      continue;
    }
    int64_t* line = lines + p * kLine;
    line[fill[p]++] = input[i];
    if (fill[p] == kLine) {
      int64_t* out = dst[p] + written[p];
      _mm256_stream_si256(reinterpret_cast<__m256i*>(out),
                          _mm256_load_si256(reinterpret_cast<__m256i*>(line)));
      _mm256_stream_si256(
          reinterpret_cast<__m256i*>(out + 4),
          _mm256_load_si256(reinterpret_cast<__m256i*>(line + 4)));
      written[p] += kLine;
      fill[p] = 0;
    }
  }
  for (size_t p = 0; p < fanout; ++p) {
    int64_t* out = dst[p] + written[p];
    const int64_t* line = lines + p * kLine;
    for (uint32_t j = 0; j < fill[p]; ++j) out[j] = line[j];
  }
  // Order the streamed lines before the caller reads the partitions.
  _mm_sfence();
}

}  // namespace rapid::primitives::simd::avx2_impl

#pragma GCC pop_options

#endif  // RAPID_SIMD_X86_64

namespace rapid::primitives::simd {

#if defined(RAPID_SIMD_X86_64)

#define RAPID_AVX2_OVERLAY_FILTER(T)                                         \
  void Avx2Overlay(FilterKernelTable<T>* t) {                                \
    t->const_bv[static_cast<int>(CmpOp::kEq)] =                              \
        &avx2_impl::FilterConstBv<CmpOp::kEq, T>;                            \
    t->const_bv[static_cast<int>(CmpOp::kNe)] =                              \
        &avx2_impl::FilterConstBv<CmpOp::kNe, T>;                            \
    t->const_bv[static_cast<int>(CmpOp::kLt)] =                              \
        &avx2_impl::FilterConstBv<CmpOp::kLt, T>;                            \
    t->const_bv[static_cast<int>(CmpOp::kLe)] =                              \
        &avx2_impl::FilterConstBv<CmpOp::kLe, T>;                            \
    t->const_bv[static_cast<int>(CmpOp::kGt)] =                              \
        &avx2_impl::FilterConstBv<CmpOp::kGt, T>;                            \
    t->const_bv[static_cast<int>(CmpOp::kGe)] =                              \
        &avx2_impl::FilterConstBv<CmpOp::kGe, T>;                            \
    t->colcol_bv[static_cast<int>(CmpOp::kEq)] =                             \
        &avx2_impl::FilterColColBv<CmpOp::kEq, T>;                           \
    t->colcol_bv[static_cast<int>(CmpOp::kNe)] =                             \
        &avx2_impl::FilterColColBv<CmpOp::kNe, T>;                           \
    t->colcol_bv[static_cast<int>(CmpOp::kLt)] =                             \
        &avx2_impl::FilterColColBv<CmpOp::kLt, T>;                           \
    t->colcol_bv[static_cast<int>(CmpOp::kLe)] =                             \
        &avx2_impl::FilterColColBv<CmpOp::kLe, T>;                           \
    t->colcol_bv[static_cast<int>(CmpOp::kGt)] =                             \
        &avx2_impl::FilterColColBv<CmpOp::kGt, T>;                           \
    t->colcol_bv[static_cast<int>(CmpOp::kGe)] =                             \
        &avx2_impl::FilterColColBv<CmpOp::kGe, T>;                           \
    t->between_bv = &avx2_impl::FilterBetweenBv<T>;                          \
  }
RAPID_SIMD_FOR_EACH_TYPE(RAPID_AVX2_OVERLAY_FILTER)
#undef RAPID_AVX2_OVERLAY_FILTER

void Avx2Overlay(AggKernelTable<int8_t>* t) { (void)t; }
void Avx2Overlay(AggKernelTable<uint8_t>* t) { (void)t; }
void Avx2Overlay(AggKernelTable<int16_t>* t) { (void)t; }
void Avx2Overlay(AggKernelTable<uint16_t>* t) { (void)t; }
void Avx2Overlay(AggKernelTable<int32_t>* t) {
  t->tile = &avx2_impl::AggTileI32;
  t->tile_selected = &avx2_impl::AggTileSelectedI32;
}
void Avx2Overlay(AggKernelTable<uint32_t>* t) {
  t->tile = &avx2_impl::AggTileU32;
  t->tile_selected = &avx2_impl::AggTileSelectedU32;
}
void Avx2Overlay(AggKernelTable<int64_t>* t) {
  t->tile = &avx2_impl::AggTileI64;
  t->tile_selected = &avx2_impl::AggTileSelectedI64;
}
void Avx2Overlay(AggKernelTable<uint64_t>* t) {
  t->tile = &avx2_impl::AggTileU64;
  t->tile_selected = &avx2_impl::AggTileSelectedU64;
}

#define RAPID_AVX2_OVERLAY_ARITH(T)                                           \
  void Avx2Overlay(ArithKernelTable<T>* t) {                                  \
    t->colcol[static_cast<int>(ArithOp::kAdd)] =                              \
        &avx2_impl::ArithColCol<ArithOp::kAdd, T>;                            \
    t->colcol[static_cast<int>(ArithOp::kSub)] =                              \
        &avx2_impl::ArithColCol<ArithOp::kSub, T>;                            \
    t->colcol[static_cast<int>(ArithOp::kMul)] =                              \
        &avx2_impl::ArithColCol<ArithOp::kMul, T>;                            \
    t->colconst[static_cast<int>(ArithOp::kAdd)] =                            \
        &avx2_impl::ArithColConst<ArithOp::kAdd, T>;                          \
    t->colconst[static_cast<int>(ArithOp::kSub)] =                            \
        &avx2_impl::ArithColConst<ArithOp::kSub, T>;                          \
    t->colconst[static_cast<int>(ArithOp::kMul)] =                            \
        &avx2_impl::ArithColConst<ArithOp::kMul, T>;                          \
  }
RAPID_AVX2_OVERLAY_ARITH(int32_t)
RAPID_AVX2_OVERLAY_ARITH(uint32_t)
RAPID_AVX2_OVERLAY_ARITH(int64_t)
RAPID_AVX2_OVERLAY_ARITH(uint64_t)
#undef RAPID_AVX2_OVERLAY_ARITH
void Avx2Overlay(ArithKernelTable<int8_t>* t) { (void)t; }
void Avx2Overlay(ArithKernelTable<uint8_t>* t) { (void)t; }
void Avx2Overlay(ArithKernelTable<int16_t>* t) { (void)t; }
void Avx2Overlay(ArithKernelTable<uint16_t>* t) { (void)t; }

// No AVX2 CRC32 instruction exists; the inherited SSE4.2 batched
// kernels are already the best x86 tier.
#define RAPID_AVX2_OVERLAY_HASH_NOOP(T) \
  void Avx2Overlay(HashKernelTable<T>* t) { (void)t; }
RAPID_SIMD_FOR_EACH_TYPE(RAPID_AVX2_OVERLAY_HASH_NOOP)
#undef RAPID_AVX2_OVERLAY_HASH_NOOP

#define RAPID_AVX2_OVERLAY_BLOOM(T) \
  void Avx2Overlay(BloomKernelTable<T>* t) { t->probe_bv = &avx2_impl::BloomProbeBv<T>; }
RAPID_SIMD_FOR_EACH_TYPE(RAPID_AVX2_OVERLAY_BLOOM)
#undef RAPID_AVX2_OVERLAY_BLOOM

#define RAPID_AVX2_OVERLAY_RLE(T) \
  void Avx2Overlay(RleKernelTable<T>* t) { t->expand = &avx2_impl::RleExpand<T>; }
RAPID_SIMD_FOR_EACH_TYPE(RAPID_AVX2_OVERLAY_RLE)
#undef RAPID_AVX2_OVERLAY_RLE

void Avx2Overlay(PartitionKernelTable* t) {
  t->partition_of = &avx2_impl::PartitionOfAvx2;
  t->bucket_indices = &avx2_impl::BucketIndicesAvx2;
  t->scatter_col = &avx2_impl::ScatterColWcAvx2;
}

#else  // !RAPID_SIMD_X86_64

#define RAPID_AVX2_OVERLAY_NOOP(T)                        \
  void Avx2Overlay(FilterKernelTable<T>* t) { (void)t; }  \
  void Avx2Overlay(AggKernelTable<T>* t) { (void)t; }     \
  void Avx2Overlay(ArithKernelTable<T>* t) { (void)t; }   \
  void Avx2Overlay(HashKernelTable<T>* t) { (void)t; }    \
  void Avx2Overlay(BloomKernelTable<T>* t) { (void)t; }   \
  void Avx2Overlay(RleKernelTable<T>* t) { (void)t; }
RAPID_SIMD_FOR_EACH_TYPE(RAPID_AVX2_OVERLAY_NOOP)
#undef RAPID_AVX2_OVERLAY_NOOP

void Avx2Overlay(PartitionKernelTable* t) { (void)t; }

#endif  // RAPID_SIMD_X86_64

}  // namespace rapid::primitives::simd
