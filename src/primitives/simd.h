// SIMD kernel dispatch tables for the primitive library.
//
// The paper's dpCores evaluate predicates with database-specific
// vector instructions (BVLD/FILT, Section 5.4, Listing 1); on
// commodity CPUs we substitute SIMD kernels selected at runtime.
// Each primitive family (filter, agg, arith, hash, partition) has one
// kernel table per element type; the table is materialized once per
// (type, SimdLevel) and the accessor returns the table matching
// SimdLevelActive(). Levels are layered: the SSE4.2 table starts as a
// copy of the scalar table with SSE4.2 kernels overlaid, and the AVX2
// table starts as a copy of the SSE4.2 table — a family/width with no
// AVX2 kernel transparently inherits the next-best implementation.
//
// Kernel contract (all levels, enforced by the equivalence suite):
//   * bit-vector kernels write ceil(n/64) words, each word written
//     exactly once and in full (no read-modify-write of the output),
//     with bits >= n zero in the tail word;
//   * RID emission and aggregation visit rows in ascending order, so
//     outputs are bit-identical to the scalar twin (integer sums
//     commute even under wraparound);
//   * arithmetic kernels tolerate exact in-place aliasing (out ==
//     values), which DsbRescaleTile relies on; partial overlap is not
//     supported.
//
// This header also owns the comparison/arithmetic op enums shared by
// every tier (previously in filter.h / arith.h).

#ifndef RAPID_PRIMITIVES_SIMD_H_
#define RAPID_PRIMITIVES_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>

#include "common/simd.h"

namespace rapid::primitives {

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

template <CmpOp op, typename T>
inline bool Compare(T value, T constant) {
  if constexpr (op == CmpOp::kEq) return value == constant;
  if constexpr (op == CmpOp::kNe) return value != constant;
  if constexpr (op == CmpOp::kLt) return value < constant;
  if constexpr (op == CmpOp::kLe) return value <= constant;
  if constexpr (op == CmpOp::kGt) return value > constant;
  if constexpr (op == CmpOp::kGe) return value >= constant;
}

enum class ArithOp { kAdd, kSub, kMul };

template <ArithOp op, typename T>
inline T Apply(T a, T b) {
  if constexpr (op == ArithOp::kAdd) return a + b;
  if constexpr (op == ArithOp::kSub) return a - b;
  if constexpr (op == ArithOp::kMul) return a * b;
}

struct AggState;  // defined in agg.h; kernels only pass pointers

namespace simd {

inline constexpr int kNumCmpOps = 6;
inline constexpr int kNumArithOps = 3;

// Element types with materialized kernel tables. Wrappers fall back
// to inline scalar loops for anything else (if constexpr), so generic
// templates keep working for exotic instantiations.
template <typename T>
inline constexpr bool kHasKernelTables =
    std::is_same_v<T, int8_t> || std::is_same_v<T, uint8_t> ||
    std::is_same_v<T, int16_t> || std::is_same_v<T, uint16_t> ||
    std::is_same_v<T, int32_t> || std::is_same_v<T, uint32_t> ||
    std::is_same_v<T, int64_t> || std::is_same_v<T, uint64_t>;

// ---- Per-family kernel tables ---------------------------------------------

template <typename T>
struct FilterKernelTable {
  // words := bit-vector of (values[i] op constant); ceil(n/64) whole
  // words, tail bits above n zero.
  using ConstBvFn = void (*)(const T* values, size_t n, T constant,
                             uint64_t* words);
  using ColColBvFn = void (*)(const T* left, const T* right, size_t n,
                              uint64_t* words);
  using BetweenBvFn = void (*)(const T* values, size_t n, T lo, T hi,
                               uint64_t* words);
  ConstBvFn const_bv[kNumCmpOps] = {};
  ColColBvFn colcol_bv[kNumCmpOps] = {};
  BetweenBvFn between_bv = nullptr;
};

template <typename T>
struct AggKernelTable {
  // SUM/MIN/MAX/COUNT of a whole tile into *state (accumulating).
  using TileFn = void (*)(const T* values, size_t n, AggState* state);
  // Same, restricted to rows whose bit is set in `words` (a BitVector
  // payload; set bits are guaranteed < the tile length by MaskTail).
  using TileSelectedFn = void (*)(const T* values, const uint64_t* words,
                                  size_t num_words, AggState* state);
  TileFn tile = nullptr;
  TileSelectedFn tile_selected = nullptr;
};

template <typename T>
struct ArithKernelTable {
  // Kernels must tolerate exact aliasing (out == values / out == left).
  using ColColFn = void (*)(const T* left, const T* right, size_t n, T* out);
  using ColConstFn = void (*)(const T* values, size_t n, T constant, T* out);
  ColColFn colcol[kNumArithOps] = {};
  ColConstFn colconst[kNumArithOps] = {};
};

template <typename T>
struct RleKernelTable {
  // Expands `num_runs` (value, length) pairs into `out` in run order:
  // sum(run_lengths) elements, each run's value repeated. The decode
  // step of an encoded tile transfer — the relation accessor expands
  // DMS-staged runs into the double-buffered DMEM tile with it.
  using ExpandFn = void (*)(const T* run_values, const uint32_t* run_lengths,
                            size_t num_runs, T* out);
  ExpandFn expand = nullptr;
};

template <typename T>
struct BloomKernelTable {
  // words := bit-vector of filter.MayContain(uint64(values[i])); same
  // output contract as the filter kernels (ceil(n/64) whole words,
  // tail bits above n zero). `blocks` is the filter's block-major lane
  // array and `block_mask` its power-of-two block mask (bloom.h). Keys
  // widen exactly like the hash kernels: signed values sign-extend,
  // unsigned values zero-extend, so every element type agrees with the
  // build side's widened int64 inserts.
  using ProbeBvFn = void (*)(const T* values, size_t n,
                             const uint64_t* blocks, uint32_t block_mask,
                             uint64_t* words);
  ProbeBvFn probe_bv = nullptr;
};

template <typename T>
struct HashKernelTable {
  // out[i] = CRC32C(uint64(keys[i])) seeded 0xFFFFFFFF — identical to
  // Crc32U64 at every level (join/partition stability depends on it).
  using TileFn = void (*)(const T* keys, size_t n, uint32_t* out);
  // inout[i] = CRC32C(uint64(keys[i])) seeded inout[i] (Crc32Combine).
  using CombineFn = void (*)(const T* keys, size_t n, uint32_t* inout);
  TileFn tile = nullptr;
  CombineFn combine = nullptr;
};

// Scratch layout shared by the partition-scatter kernels: `fanout`
// 64-byte write-combining lines, then per-partition line fill counts
// (u32), pre-alignment head lengths (u32) and output cursors (u64).
// The caller provides one 64-byte-aligned block of
// ScatterScratchBytes(fanout); kernels initialize it themselves.
inline constexpr size_t kWcLineBytes = 64;
inline constexpr size_t ScatterScratchBytes(size_t fanout) {
  return fanout * (kWcLineBytes + sizeof(uint32_t) + sizeof(uint32_t) +
                   sizeof(uint64_t));
}

struct PartitionKernelTable {
  // out[i] = uint16((hashes[i] >> shift) & mask), Listing 2 loop 1.
  using PartitionOfFn = void (*)(const uint32_t* hashes, size_t n, int shift,
                                 uint32_t mask, uint16_t* out);
  // counts[p] += |{i : partition_of[i] == p}|; counts has `fanout`
  // zero-initialized entries (Listing 2 loop 2).
  using HistogramFn = void (*)(const uint16_t* partition_of, size_t n,
                               uint32_t* counts, size_t fanout);
  // indices[i] = hashes[i] & mask — the join probe bucket computation.
  using BucketIndicesFn = void (*)(const uint32_t* hashes, size_t n,
                                   uint32_t mask, uint32_t* indices);
  // Scatters one column: row i goes to partition p = partition_of[i],
  // appended at dst[p] in tile order (dst[p] is the partition's next
  // write position at tile start; the kernel tracks cursors in the
  // scratch). `wc` is a 64-byte-aligned ScatterScratchBytes(fanout)
  // block (never null). Vector tiers stage full cache lines in the
  // scratch and flush them with non-temporal streaming stores once
  // the destination cursor is 64-byte aligned; rows before the
  // alignment point and partial tail lines are stored scalar, so the
  // output is bit-identical to the scalar twin.
  using ScatterColFn = void (*)(const int64_t* input,
                                const uint16_t* partition_of, size_t n,
                                size_t fanout, int64_t* const* dst,
                                uint8_t* wc);
  PartitionOfFn partition_of = nullptr;
  HistogramFn histogram = nullptr;
  BucketIndicesFn bucket_indices = nullptr;
  ScatterColFn scatter_col = nullptr;
};

// ---- Accessors (table for the active SimdLevel) ---------------------------

template <typename T>
const FilterKernelTable<T>& filter_kernels();
template <typename T>
const AggKernelTable<T>& agg_kernels();
template <typename T>
const ArithKernelTable<T>& arith_kernels();
template <typename T>
const HashKernelTable<T>& hash_kernels();
template <typename T>
const BloomKernelTable<T>& bloom_kernels();
template <typename T>
const RleKernelTable<T>& rle_kernels();
const PartitionKernelTable& partition_kernels();

// The level whose kernels a (family, element width) pair actually
// runs at under the active level — lower tiers shine through where a
// level has no overlay (e.g. hash resolves to sse42 under avx2, agg
// of 1/2-byte elements resolves to scalar). Families are the catalog
// names: "filter", "agg", "arith", "hash", "partition", "rle",
// "bloom".
SimdLevel ResolvedLevel(std::string_view family, int width);

}  // namespace simd
}  // namespace rapid::primitives

#endif  // RAPID_PRIMITIVES_SIMD_H_
