// Arithmetic primitives: expression evaluation over tiles
// (Section 5.1, "Primitives"). DSB-aware: multiplication adds scales,
// addition/subtraction requires equal scales (the planner inserts
// rescales), division is avoided in favour of multiplying by
// reciprocal constants pre-scaled by the compiler. Bodies dispatch to
// the SIMD kernel tables (simd.h); kernels tolerate exact in-place
// aliasing (DsbRescaleTile rescales in place through them).

#ifndef RAPID_PRIMITIVES_ARITH_H_
#define RAPID_PRIMITIVES_ARITH_H_

#include <cstddef>
#include <cstdint>

#include "primitives/simd.h"
#include "storage/dsb.h"

namespace rapid::primitives {

// out[i] = left[i] op right[i].
template <ArithOp op, typename T>
void ArithColCol(const T* left, const T* right, size_t n, T* out) {
  if constexpr (simd::kHasKernelTables<T>) {
    simd::arith_kernels<T>().colcol[static_cast<int>(op)](left, right, n, out);
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = Apply<op, T>(left[i], right[i]);
  }
}

// out[i] = values[i] op constant.
template <ArithOp op, typename T>
void ArithColConst(const T* values, size_t n, T constant, T* out) {
  if constexpr (simd::kHasKernelTables<T>) {
    simd::arith_kernels<T>().colconst[static_cast<int>(op)](values, n,
                                                            constant, out);
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = Apply<op, T>(values[i], constant);
  }
}

// Rescales a tile of DSB mantissas in place from `from_scale` to
// `to_scale` (>= from_scale). Used when vectors of the same column
// carry different common scales.
inline void DsbRescaleTile(int64_t* values, size_t n, int from_scale,
                           int to_scale) {
  if (from_scale == to_scale) return;
  const int64_t factor = storage::Pow10(to_scale - from_scale);
  ArithColConst<ArithOp::kMul, int64_t>(values, n, factor, values);
}

// DSB multiply: mantissas multiply, scales add. The result scale is
// returned so the consumer can track it; overflow is the caller's
// responsibility (QComp bounds operand scales).
inline int DsbMulTile(const int64_t* left, int left_scale, const int64_t* right,
                      int right_scale, size_t n, int64_t* out) {
  ArithColCol<ArithOp::kMul, int64_t>(left, right, n, out);
  return left_scale + right_scale;
}

// DSB multiply by a decimal constant given as (mantissa, scale),
// e.g. * 0.5 == * (5, 1).
inline int DsbMulConstTile(const int64_t* values, int scale,
                           int64_t const_mantissa, int const_scale, size_t n,
                           int64_t* out) {
  ArithColConst<ArithOp::kMul, int64_t>(values, n, const_mantissa, out);
  return scale + const_scale;
}

}  // namespace rapid::primitives

#endif  // RAPID_PRIMITIVES_ARITH_H_
