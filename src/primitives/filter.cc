#include "primitives/filter.h"

namespace rapid::primitives {

// Bitmap probes stay scalar (a gather per row), but the output is
// built as whole words like every other bit-vector kernel.
void FilterDictSetBv(const uint32_t* codes, size_t n,
                     const BitVector& qualifying_codes, BitVector* out) {
  out->Resize(n);
  uint64_t* words = out->mutable_words();
  size_t i = 0, w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    uint64_t bits = 0;
    for (size_t b = 0; b < 64; ++b) {
      const uint32_t code = codes[i + b];
      bits |= static_cast<uint64_t>(
                  code < qualifying_codes.size() && qualifying_codes.Test(code))
              << b;
    }
    words[w] = bits;
  }
  if (i < n) {
    uint64_t bits = 0;
    for (size_t b = 0; i + b < n; ++b) {
      const uint32_t code = codes[i + b];
      bits |= static_cast<uint64_t>(
                  code < qualifying_codes.size() && qualifying_codes.Test(code))
              << b;
    }
    words[w] = bits;
  }
}

}  // namespace rapid::primitives
