#include "primitives/filter.h"

namespace rapid::primitives {

void FilterDictSetBv(const uint32_t* codes, size_t n,
                     const BitVector& qualifying_codes, BitVector* out) {
  out->Resize(n);
  uint64_t* words = out->mutable_words();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bit =
        (codes[i] < qualifying_codes.size() && qualifying_codes.Test(codes[i]))
            ? 1u
            : 0u;
    words[i >> 6] |= bit << (i & 63);
  }
}

}  // namespace rapid::primitives
