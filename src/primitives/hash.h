// Hash primitives: vectorized CRC32 hash-value generation over tiles,
// modeling the dpCore CRC32 instruction and the DMS hash engine.

#ifndef RAPID_PRIMITIVES_HASH_H_
#define RAPID_PRIMITIVES_HASH_H_

#include <cstddef>
#include <cstdint>

#include "common/crc32.h"

namespace rapid::primitives {

// out[i] = CRC32(keys[i]), one tight loop per tile.
template <typename T>
void HashTile(const T* keys, size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Crc32U64(static_cast<uint64_t>(keys[i]));
  }
}

// Chains another key column into existing hash values (multi-key
// joins / group-bys).
template <typename T>
void HashCombineTile(const T* keys, size_t n, uint32_t* inout) {
  for (size_t i = 0; i < n; ++i) {
    inout[i] = Crc32Combine(inout[i], static_cast<uint64_t>(keys[i]));
  }
}

}  // namespace rapid::primitives

#endif  // RAPID_PRIMITIVES_HASH_H_
