// Hash primitives: vectorized CRC32 hash-value generation over tiles,
// modeling the dpCore CRC32 instruction and the DMS hash engine.
// Bodies dispatch to the SIMD kernel tables (simd.h); the SSE4.2 tier
// batches the hardware crc32 instruction 4-way per tile. Hash values
// are identical at every tier — join and partition placement never
// depends on the dispatch level.

#ifndef RAPID_PRIMITIVES_HASH_H_
#define RAPID_PRIMITIVES_HASH_H_

#include <cstddef>
#include <cstdint>

#include "common/crc32.h"
#include "primitives/simd.h"

namespace rapid::primitives {

// out[i] = CRC32(keys[i]), one tight loop per tile.
template <typename T>
void HashTile(const T* keys, size_t n, uint32_t* out) {
  if constexpr (simd::kHasKernelTables<T>) {
    simd::hash_kernels<T>().tile(keys, n, out);
  } else {
    for (size_t i = 0; i < n; ++i) {
      out[i] = Crc32U64(static_cast<uint64_t>(keys[i]));
    }
  }
}

// Chains another key column into existing hash values (multi-key
// joins / group-bys).
template <typename T>
void HashCombineTile(const T* keys, size_t n, uint32_t* inout) {
  if constexpr (simd::kHasKernelTables<T>) {
    simd::hash_kernels<T>().combine(keys, n, inout);
  } else {
    for (size_t i = 0; i < n; ++i) {
      inout[i] = Crc32Combine(inout[i], static_cast<uint64_t>(keys[i]));
    }
  }
}

}  // namespace rapid::primitives

#endif  // RAPID_PRIMITIVES_HASH_H_
