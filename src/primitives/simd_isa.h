// Internal: overlay hooks the per-ISA translation units export.
//
// simd.cc builds the level tables by copying the next-lower level and
// calling the matching overlay, which overwrites just the entries its
// ISA implements (simd_sse42.cc / simd_avx2.cc). The overlay
// functions themselves are compiled with BASELINE codegen — only the
// kernels they install live inside `#pragma GCC target` regions — so
// building the tables never executes an instruction the host may
// lack. On non-x86 builds every overlay is a no-op.

#ifndef RAPID_PRIMITIVES_SIMD_ISA_H_
#define RAPID_PRIMITIVES_SIMD_ISA_H_

#include "primitives/simd.h"

namespace rapid::primitives::simd {

#define RAPID_SIMD_FOR_EACH_TYPE(M) \
  M(int8_t)                         \
  M(uint8_t)                        \
  M(int16_t)                        \
  M(uint16_t)                       \
  M(int32_t)                        \
  M(uint32_t)                       \
  M(int64_t)                        \
  M(uint64_t)

#define RAPID_SIMD_DECLARE_OVERLAYS(T)      \
  void Sse42Overlay(FilterKernelTable<T>*); \
  void Avx2Overlay(FilterKernelTable<T>*);  \
  void Sse42Overlay(AggKernelTable<T>*);    \
  void Avx2Overlay(AggKernelTable<T>*);     \
  void Sse42Overlay(ArithKernelTable<T>*);  \
  void Avx2Overlay(ArithKernelTable<T>*);   \
  void Sse42Overlay(HashKernelTable<T>*);   \
  void Avx2Overlay(HashKernelTable<T>*);    \
  void Sse42Overlay(BloomKernelTable<T>*);  \
  void Avx2Overlay(BloomKernelTable<T>*);   \
  void Sse42Overlay(RleKernelTable<T>*);    \
  void Avx2Overlay(RleKernelTable<T>*);

RAPID_SIMD_FOR_EACH_TYPE(RAPID_SIMD_DECLARE_OVERLAYS)
#undef RAPID_SIMD_DECLARE_OVERLAYS

void Sse42Overlay(PartitionKernelTable*);
void Avx2Overlay(PartitionKernelTable*);

}  // namespace rapid::primitives::simd

#endif  // RAPID_PRIMITIVES_SIMD_ISA_H_
