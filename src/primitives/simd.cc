// Dispatch-table assembly: one table set per (family, element type),
// three levels each. Level 0 is the scalar reference; level 1 copies
// it and lets the SSE4.2 TU overlay its kernels; level 2 copies level
// 1 and lets the AVX2 TU overlay. The accessor picks the table for
// SimdLevelActive() on every call, so ForceSimdLevel takes effect
// immediately (the tables themselves are immutable after first use).

#include "primitives/simd.h"

#include "primitives/simd_isa.h"
#include "primitives/simd_scalar.h"

namespace rapid::primitives::simd {
namespace {

constexpr int kNumLevels = 3;

template <typename T>
FilterKernelTable<T> ScalarFilterTable() {
  FilterKernelTable<T> t;
  t.const_bv[static_cast<int>(CmpOp::kEq)] = &ScalarFilterConstBv<CmpOp::kEq, T>;
  t.const_bv[static_cast<int>(CmpOp::kNe)] = &ScalarFilterConstBv<CmpOp::kNe, T>;
  t.const_bv[static_cast<int>(CmpOp::kLt)] = &ScalarFilterConstBv<CmpOp::kLt, T>;
  t.const_bv[static_cast<int>(CmpOp::kLe)] = &ScalarFilterConstBv<CmpOp::kLe, T>;
  t.const_bv[static_cast<int>(CmpOp::kGt)] = &ScalarFilterConstBv<CmpOp::kGt, T>;
  t.const_bv[static_cast<int>(CmpOp::kGe)] = &ScalarFilterConstBv<CmpOp::kGe, T>;
  t.colcol_bv[static_cast<int>(CmpOp::kEq)] = &ScalarFilterColColBv<CmpOp::kEq, T>;
  t.colcol_bv[static_cast<int>(CmpOp::kNe)] = &ScalarFilterColColBv<CmpOp::kNe, T>;
  t.colcol_bv[static_cast<int>(CmpOp::kLt)] = &ScalarFilterColColBv<CmpOp::kLt, T>;
  t.colcol_bv[static_cast<int>(CmpOp::kLe)] = &ScalarFilterColColBv<CmpOp::kLe, T>;
  t.colcol_bv[static_cast<int>(CmpOp::kGt)] = &ScalarFilterColColBv<CmpOp::kGt, T>;
  t.colcol_bv[static_cast<int>(CmpOp::kGe)] = &ScalarFilterColColBv<CmpOp::kGe, T>;
  t.between_bv = &ScalarFilterBetweenBv<T>;
  return t;
}

template <typename T>
AggKernelTable<T> ScalarAggTable() {
  AggKernelTable<T> t;
  t.tile = &ScalarAggTile<T>;
  t.tile_selected = &ScalarAggTileSelected<T>;
  return t;
}

template <typename T>
ArithKernelTable<T> ScalarArithTable() {
  ArithKernelTable<T> t;
  t.colcol[static_cast<int>(ArithOp::kAdd)] = &ScalarArithColCol<ArithOp::kAdd, T>;
  t.colcol[static_cast<int>(ArithOp::kSub)] = &ScalarArithColCol<ArithOp::kSub, T>;
  t.colcol[static_cast<int>(ArithOp::kMul)] = &ScalarArithColCol<ArithOp::kMul, T>;
  t.colconst[static_cast<int>(ArithOp::kAdd)] = &ScalarArithColConst<ArithOp::kAdd, T>;
  t.colconst[static_cast<int>(ArithOp::kSub)] = &ScalarArithColConst<ArithOp::kSub, T>;
  t.colconst[static_cast<int>(ArithOp::kMul)] = &ScalarArithColConst<ArithOp::kMul, T>;
  return t;
}

template <typename T>
RleKernelTable<T> ScalarRleTable() {
  RleKernelTable<T> t;
  t.expand = &ScalarRleExpand<T>;
  return t;
}

template <typename T>
HashKernelTable<T> ScalarHashTable() {
  HashKernelTable<T> t;
  t.tile = &ScalarHashTile<T>;
  t.combine = &ScalarHashCombineTile<T>;
  return t;
}

template <typename T>
BloomKernelTable<T> ScalarBloomTable() {
  BloomKernelTable<T> t;
  t.probe_bv = &ScalarBloomProbeBv<T>;
  return t;
}

void ScalarPartitionOf(const uint32_t* hashes, size_t n, int shift,
                       uint32_t mask, uint16_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint16_t>((hashes[i] >> shift) & mask);
  }
}

void ScalarHistogram(const uint16_t* partition_of, size_t n, uint32_t* counts,
                     size_t fanout) {
  (void)fanout;
  for (size_t i = 0; i < n; ++i) ++counts[partition_of[i]];
}

void ScalarBucketIndices(const uint32_t* hashes, size_t n, uint32_t mask,
                         uint32_t* indices) {
  for (size_t i = 0; i < n; ++i) indices[i] = hashes[i] & mask;
}

// Direct scalar scatter: one store per row through per-partition
// cursors kept in the scratch's cursor region (the WC lines stay
// unused at this tier).
void ScalarScatterCol(const int64_t* input, const uint16_t* partition_of,
                      size_t n, size_t fanout, int64_t* const* dst,
                      uint8_t* wc) {
  auto* written = reinterpret_cast<uint64_t*>(
      wc + fanout * (kWcLineBytes + 2 * sizeof(uint32_t)));
  for (size_t p = 0; p < fanout; ++p) written[p] = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t p = partition_of[i];
    dst[p][written[p]++] = input[i];
  }
}

PartitionKernelTable ScalarPartitionTable() {
  PartitionKernelTable t;
  t.partition_of = &ScalarPartitionOf;
  t.histogram = &ScalarHistogram;
  t.bucket_indices = &ScalarBucketIndices;
  t.scatter_col = &ScalarScatterCol;
  return t;
}

// Builds the three layered tables for one family/type.
template <typename Table, typename MakeScalar>
struct TableSet {
  Table levels[kNumLevels];

  explicit TableSet(MakeScalar make) {
    levels[0] = make();
    levels[1] = levels[0];
    Sse42Overlay(&levels[1]);
    levels[2] = levels[1];
    Avx2Overlay(&levels[2]);
  }
};

template <typename Table, typename MakeScalar>
const Table& ActiveTable(MakeScalar make) {
  static const TableSet<Table, MakeScalar> set(make);
  return set.levels[static_cast<int>(SimdLevelActive())];
}

}  // namespace

template <typename T>
const FilterKernelTable<T>& filter_kernels() {
  return ActiveTable<FilterKernelTable<T>>(&ScalarFilterTable<T>);
}

template <typename T>
const AggKernelTable<T>& agg_kernels() {
  return ActiveTable<AggKernelTable<T>>(&ScalarAggTable<T>);
}

template <typename T>
const ArithKernelTable<T>& arith_kernels() {
  return ActiveTable<ArithKernelTable<T>>(&ScalarArithTable<T>);
}

template <typename T>
const HashKernelTable<T>& hash_kernels() {
  return ActiveTable<HashKernelTable<T>>(&ScalarHashTable<T>);
}

template <typename T>
const BloomKernelTable<T>& bloom_kernels() {
  return ActiveTable<BloomKernelTable<T>>(&ScalarBloomTable<T>);
}

template <typename T>
const RleKernelTable<T>& rle_kernels() {
  return ActiveTable<RleKernelTable<T>>(&ScalarRleTable<T>);
}

const PartitionKernelTable& partition_kernels() {
  return ActiveTable<PartitionKernelTable>(&ScalarPartitionTable);
}

#define RAPID_SIMD_INSTANTIATE(T)                              \
  template const FilterKernelTable<T>& filter_kernels<T>();    \
  template const AggKernelTable<T>& agg_kernels<T>();          \
  template const ArithKernelTable<T>& arith_kernels<T>();      \
  template const HashKernelTable<T>& hash_kernels<T>();   \
  template const BloomKernelTable<T>& bloom_kernels<T>(); \
  template const RleKernelTable<T>& rle_kernels<T>();
RAPID_SIMD_FOR_EACH_TYPE(RAPID_SIMD_INSTANTIATE)
#undef RAPID_SIMD_INSTANTIATE

SimdLevel ResolvedLevel(std::string_view family, int width) {
  const SimdLevel active = SimdLevelActive();
  const int lvl = static_cast<int>(active);
  // Highest level <= active that overlays kernels for this family and
  // element width; must be kept in sync with simd_sse42.cc /
  // simd_avx2.cc. Width 0 means width-independent.
  if (family == "filter") {
    if (lvl >= static_cast<int>(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
    if (lvl >= static_cast<int>(SimdLevel::kSse42) && width >= 4) {
      return SimdLevel::kSse42;
    }
    return SimdLevel::kScalar;
  }
  if (family == "agg" || family == "arith") {
    if (lvl >= static_cast<int>(SimdLevel::kAvx2) && width >= 4) {
      return SimdLevel::kAvx2;
    }
    return SimdLevel::kScalar;
  }
  if (family == "hash") {
    // The batched CRC kernel is SSE4.2 (no AVX2 CRC exists); under
    // avx2 the inherited sse42 kernel runs.
    if (lvl >= static_cast<int>(SimdLevel::kSse42)) return SimdLevel::kSse42;
    return SimdLevel::kScalar;
  }
  if (family == "partition") {
    if (lvl >= static_cast<int>(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
    if (lvl >= static_cast<int>(SimdLevel::kSse42)) return SimdLevel::kSse42;
    return SimdLevel::kScalar;
  }
  if (family == "bloom") {
    // AVX2 probes all eight lanes at once; SSE4.2 only unrolls the
    // scalar probe (4-way), all widths.
    if (lvl >= static_cast<int>(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
    if (lvl >= static_cast<int>(SimdLevel::kSse42)) return SimdLevel::kSse42;
    return SimdLevel::kScalar;
  }
  if (family == "rle") {
    // Broadcast-fill expansion: AVX2 covers all widths, SSE4.2 only
    // the 4/8-byte splats.
    if (lvl >= static_cast<int>(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
    if (lvl >= static_cast<int>(SimdLevel::kSse42) && width >= 4) {
      return SimdLevel::kSse42;
    }
    return SimdLevel::kScalar;
  }
  return SimdLevel::kScalar;
}

}  // namespace rapid::primitives::simd
