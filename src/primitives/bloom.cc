#include "primitives/bloom.h"

#include <algorithm>
#include <cmath>

namespace rapid::primitives {

namespace {
size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

size_t BlockedBloomFilter::BlocksForNdv(size_t ndv, size_t max_bytes) {
  if (max_bytes < kBloomBlockBytes) return 0;
  const size_t wanted = NextPow2(std::max<size_t>(1, (ndv + 7) / 8));
  // max_bytes / kBloomBlockBytes rounded down to a power of two.
  size_t cap = 1;
  while (cap * 2 * kBloomBlockBytes <= max_bytes) cap <<= 1;
  return std::min(wanted, cap);
}

double BlockedBloomFilter::EstimatedFpr(size_t ndv, size_t num_blocks) {
  if (num_blocks == 0) return 1.0;
  // Each key sets 8 bits in one 512-bit block; expected fill of a
  // block holding ndv/num_blocks keys, raised to the 8 probe bits.
  const double keys_per_block =
      static_cast<double>(ndv) / static_cast<double>(num_blocks);
  const double fill = 1.0 - std::exp(-8.0 * keys_per_block / 512.0);
  double fpr = 1.0;
  for (int i = 0; i < 8; ++i) fpr *= fill;
  return fpr;
}

}  // namespace rapid::primitives
