// HostDatabase: the System X facade (Section 3).
//
// Owns the authoritative tables, the SCN journal, and the offload
// machinery. Queries enter here: the plan generator decides
// full/partial/no offload; offloaded fragments execute in RAPID via
// the RapidOperator placeholder; everything else (and fallbacks) runs
// on the pull-based Volcano engine.

#ifndef RAPID_HOSTDB_DATABASE_H_
#define RAPID_HOSTDB_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <chrono>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "hostdb/journal.h"
#include "hostdb/offload.h"
#include "hostdb/volcano.h"
#include "storage/loader.h"

namespace rapid::hostdb {

class HostDatabase {
 public:
  HostDatabase() = default;

  // DDL + initial load into the host (source of truth).
  Status CreateTable(const std::string& name,
                     const std::vector<storage::ColumnSpec>& specs,
                     const std::vector<storage::ColumnData>& data,
                     const storage::LoadOptions& options =
                         storage::LoadOptions{});

  // The LOAD command (Section 4.4): copies a host table into RAPID,
  // consistent as of the current SCN.
  Status LoadToRapid(const std::string& name, core::RapidEngine* engine);

  // DML: applies `changes` to the host table at a fresh SCN and
  // records them in the journal for later propagation.
  Status Update(const std::string& name,
                std::vector<storage::RowChange> changes);

  // Runs the periodic checkpointing (journal -> RAPID trackers).
  Status Checkpoint(core::RapidEngine* engine) {
    std::lock_guard<std::mutex> lock(checkpoint_mu_);
    return journal_.CheckpointAll(engine);
  }

  // Starts the periodic background checkpointer of Section 3.3
  // ("periodic background threads for scanning and propagating the
  // changes from the journals"), avoiding long query checkpoints at
  // admission time. Stops automatically at destruction.
  void StartBackgroundCheckpointer(core::RapidEngine* engine,
                                   std::chrono::milliseconds interval);
  void StopBackgroundCheckpointer();

  ~HostDatabase() { StopBackgroundCheckpointer(); }

  // Executes a query: offload decision, RAPID execution (with
  // admissibility check and fallback), host post-processing.
  Result<QueryReport> ExecuteQuery(
      const core::LogicalPtr& plan, core::RapidEngine* engine,
      const core::ExecOptions& options = core::ExecOptions{});

  // EXPLAIN ANALYZE: renders the offload decision, then executes each
  // offloadable fragment on RAPID and appends its physical plan tree
  // with per-node actuals (rows, modeled time, cycles).
  Result<std::string> ExplainAnalyze(
      const core::LogicalPtr& plan, core::RapidEngine* engine,
      const core::ExecOptions& options = core::ExecOptions{});

  // System-X-only execution (the Figure 16 baseline).
  Result<core::ColumnSet> ExecuteLocal(const core::LogicalPtr& plan) {
    return VolcanoExecutor::Execute(plan, catalog_);
  }

  const core::Catalog& catalog() const { return catalog_; }
  ScnJournal& journal() { return journal_; }
  const storage::Table* GetTable(const std::string& name) const {
    auto it = catalog_.find(name);
    return it == catalog_.end() ? nullptr : &it->second;
  }
  storage::Table* GetMutableTable(const std::string& name) {
    auto it = catalog_.find(name);
    return it == catalog_.end() ? nullptr : &it->second;
  }

 private:
  // Applies one change to the host table in place.
  Status ApplyChangeToTable(storage::Table* table,
                            const storage::RowChange& change,
                            size_t rows_per_chunk, size_t num_partitions);

  core::Catalog catalog_;
  ScnJournal journal_;
  std::mutex checkpoint_mu_;

  // Background checkpointer state.
  std::thread checkpointer_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;
  // Load geometry per table, for global-row -> (partition, chunk, row)
  // mapping when applying updates.
  struct Geometry {
    size_t rows_per_chunk = 0;
    size_t num_partitions = 1;
    std::vector<storage::ColumnSpec> specs;
    std::vector<storage::ColumnData> data;  // retained for RAPID loads
  };
  std::unordered_map<std::string, Geometry> geometry_;
};

}  // namespace rapid::hostdb

#endif  // RAPID_HOSTDB_DATABASE_H_
