#include "hostdb/database.h"

#include <chrono>
#include <memory>

#include "common/metrics.h"
#include "common/trace.h"
#include "storage/encoding_stack.h"

namespace rapid::hostdb {

namespace {

const char* DecisionName(OffloadDecision::Kind kind) {
  switch (kind) {
    case OffloadDecision::Kind::kFull:
      return "full";
    case OffloadDecision::Kind::kPartial:
      return "partial";
    case OffloadDecision::Kind::kNone:
      return "none";
  }
  return "none";
}

void CountQuery(bool offloaded, bool fell_back) {
  auto& reg = MetricsRegistry::Instance();
  static MetricCounter* queries = reg.Counter("hostdb.queries");
  static MetricCounter* off = reg.Counter("hostdb.queries.offloaded");
  static MetricCounter* fb = reg.Counter("hostdb.queries.fell_back");
  queries->Increment();
  if (offloaded) off->Increment();
  if (fell_back) fb->Increment();
}

}  // namespace

void HostDatabase::StartBackgroundCheckpointer(
    core::RapidEngine* engine, std::chrono::milliseconds interval) {
  StopBackgroundCheckpointer();
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_stop_ = false;
  }
  checkpointer_ = std::thread([this, engine, interval] {
    std::unique_lock<std::mutex> lock(bg_mu_);
    while (!bg_stop_) {
      bg_cv_.wait_for(lock, interval, [this] { return bg_stop_; });
      if (bg_stop_) return;
      lock.unlock();
      // Failures leave entries pending; the next tick retries.
      (void)Checkpoint(engine);
      lock.lock();
    }
  });
}

void HostDatabase::StopBackgroundCheckpointer() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  if (checkpointer_.joinable()) checkpointer_.join();
}

Status HostDatabase::CreateTable(const std::string& name,
                                 const std::vector<storage::ColumnSpec>& specs,
                                 const std::vector<storage::ColumnData>& data,
                                 const storage::LoadOptions& options) {
  storage::LoadOptions opts = options;
  opts.scn = journal_.current_scn();
  RAPID_ASSIGN_OR_RETURN(storage::Table table,
                         storage::LoadTable(name, specs, data, opts));
  catalog_.erase(name);
  catalog_.emplace(name, std::move(table));
  Geometry geo;
  geo.rows_per_chunk = opts.rows_per_chunk;
  geo.num_partitions = opts.num_partitions;
  geo.specs = specs;
  geo.data = data;
  geometry_[name] = std::move(geo);
  return Status::OK();
}

Status HostDatabase::LoadToRapid(const std::string& name,
                                 core::RapidEngine* engine) {
  auto geo = geometry_.find(name);
  if (geo == geometry_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  // The LOAD command re-scans the base data (multiple scan threads in
  // the paper; here a fresh encode) and ships it to the RAPID node,
  // consistent as of the current SCN. Pending journal entries created
  // after this point are propagated by checkpointing.
  storage::LoadOptions opts;
  opts.rows_per_chunk = geo->second.rows_per_chunk;
  opts.num_partitions = geo->second.num_partitions;
  opts.scn = journal_.current_scn();
  RAPID_ASSIGN_OR_RETURN(
      storage::Table copy,
      storage::LoadTable(name, geo->second.specs, geo->second.data, opts));
  // Loading reflects updates already applied to the *staged* data?
  // No: the staged data is the original load; bring the copy up to
  // date with the host table's current contents.
  const storage::Table* host = GetTable(name);
  for (size_t p = 0; p < host->num_partitions(); ++p) {
    // Host and copy share geometry, so copy chunks verbatim.
    for (size_t c = 0; c < host->partition(p).num_chunks(); ++c) {
      const storage::Chunk& hchunk = host->partition(p).chunk(c);
      storage::Chunk& rchunk = copy.partition(p).chunk(c);
      for (size_t col = 0; col < hchunk.num_columns(); ++col) {
        for (size_t r = 0; r < hchunk.num_rows(); ++r) {
          rchunk.column(col).SetInt(r, hchunk.column(col).GetInt(r));
        }
      }
    }
  }
  copy.RecomputeStats();
  for (size_t c = 0; c < host->schema().num_fields(); ++c) {
    copy.stats(c).dsb_scale = host->stats(c).dsb_scale;
  }
  // The verbatim chunk copy above mutated the freshly loaded vectors,
  // so the load-time transfer representations are stale: rebuild them
  // (and the compression-ratio stats) from the up-to-date contents.
  (void)storage::BuildTableEncodings(&copy);
  return engine->Load(std::move(copy));
}

Status HostDatabase::Update(const std::string& name,
                            std::vector<storage::RowChange> changes) {
  storage::Table* table = GetMutableTable(name);
  if (table == nullptr) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  const uint64_t scn = journal_.NextScn();
  for (const storage::RowChange& change : changes) {
    RAPID_RETURN_NOT_OK(
        storage::ApplyRowChange(table, change.row_id, change.values));
  }
  table->set_scn(scn);
  journal_.Record(name, scn, std::move(changes));
  return Status::OK();
}

Result<QueryReport> HostDatabase::ExecuteQuery(
    const core::LogicalPtr& plan, core::RapidEngine* engine,
    const core::ExecOptions& options) {
  QueryReport report;
  // Outermost trace scope: the offload decision, the RAPID fragment
  // runs, and any fallback graft all land in one exported trace.
  TraceQueryScope trace_scope(engine->dpu().num_cores(),
                              engine->dpu().params().clock_hz);
  OffloadPlanner planner(engine->dpu().config(), engine->dpu().params());
  const OffloadDecision decision = [&] {
    TraceSpan span(TraceMode::kSummary, TraceCollector::kTrackHost,
                   "offload.decide");
    OffloadDecision d = planner.Decide(plan, *engine, catalog_);
    if (span.active()) {
      span.Annotate("kind", DecisionName(d.kind));
      span.Annotate("reason", TraceCollector::Instance().Intern(d.reason));
      span.Annotate("rapid_seconds", d.rapid_seconds);
      span.Annotate("local_seconds", d.local_seconds);
      span.Annotate("fragments", static_cast<int64_t>(d.fragments.size()));
    }
    return d;
  }();
  report.decision = decision.kind;

  const uint64_t query_scn = journal_.current_scn();
  const auto host_start = std::chrono::steady_clock::now();

  if (decision.kind == OffloadDecision::Kind::kNone) {
    RAPID_ASSIGN_OR_RETURN(report.rows,
                           VolcanoExecutor::Execute(plan, catalog_));
    report.host_wall_seconds = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   host_start)
                                   .count();
    CountQuery(/*offloaded=*/false, /*fell_back=*/false);
    return report;
  }

  // Execute every fragment through its own RAPID placeholder operator
  // ("one or many place holder node(s)", Section 3.1).
  std::vector<std::unique_ptr<RapidOperator>> placeholders;
  std::vector<core::ColumnSet> fragment_rows(decision.fragments.size());
  report.offloaded = true;
  for (size_t f = 0; f < decision.fragments.size(); ++f) {
    placeholders.push_back(std::make_unique<RapidOperator>(
        decision.fragments[f], engine, &journal_, query_scn, &catalog_,
        options));
    RAPID_ASSIGN_OR_RETURN(fragment_rows[f],
                           DrainToColumnSet(placeholders[f].get()));
    report.Merge(*placeholders[f]);
  }
  if (!placeholders.empty()) {
    report.rapid_stats = placeholders[0]->rapid_stats();
  }

  if (decision.kind == OffloadDecision::Kind::kFull) {
    // The whole plan was the single fragment.
    report.rows = std::move(fragment_rows[0]);
  } else {
    // The rest of the plan runs on the Volcano engine with fragment
    // rows materialized behind their placeholders.
    NodeOverrides overrides;
    for (size_t f = 0; f < decision.fragments.size(); ++f) {
      overrides[decision.fragments[f].get()] = &fragment_rows[f];
    }
    RAPID_ASSIGN_OR_RETURN(
        report.rows, VolcanoExecutor::Execute(plan, catalog_, overrides));
  }

  report.host_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count() -
      report.rapid_wall_seconds;
  if (report.host_wall_seconds < 0) report.host_wall_seconds = 0;
  CountQuery(report.offloaded, report.fell_back);
  return report;
}

Result<std::string> HostDatabase::ExplainAnalyze(
    const core::LogicalPtr& plan, core::RapidEngine* engine,
    const core::ExecOptions& options) {
  OffloadPlanner planner(engine->dpu().config(), engine->dpu().params());
  const OffloadDecision decision = planner.Decide(plan, *engine, catalog_);
  std::string out = "offload: ";
  out += DecisionName(decision.kind);
  out += " (" + decision.reason + ")\n";
  if (decision.kind == OffloadDecision::Kind::kNone) {
    out += "plan executes on host; no RAPID per-node actuals\n";
    return out;
  }
  for (size_t f = 0; f < decision.fragments.size(); ++f) {
    if (decision.fragments.size() > 1) {
      out += "fragment " + std::to_string(f) + ":\n";
    }
    RAPID_ASSIGN_OR_RETURN(
        std::string tree,
        engine->ExplainAnalyze(decision.fragments[f], options));
    out += tree;
  }
  return out;
}

}  // namespace rapid::hostdb
