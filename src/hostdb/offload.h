// Offload planning and the RAPID operator (Sections 3.1 and 3.2).
//
// The host's plan generator considers (i) full offload, (ii) partial
// offload of fragments, and (iii) no offload, based on operator
// support, table residency in RAPID, and the RAPID cost model. The
// chosen fragment is wrapped in a placeholder — the *RAPID operator* —
// which at start() checks SCN admissibility, triggers RAPID execution
// and buffers results; on admission failure it falls back to the
// System-X-only plan.

#ifndef RAPID_HOSTDB_OFFLOAD_H_
#define RAPID_HOSTDB_OFFLOAD_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/qcomp/cost_model.h"
#include "hostdb/journal.h"
#include "hostdb/volcano.h"

namespace rapid::hostdb {

struct OffloadDecision {
  enum class Kind { kFull, kPartial, kNone };
  Kind kind = Kind::kNone;
  // kFull: the whole plan (one fragment). kPartial: every maximal
  // offloadable subtree — the logical tree "typically contains one or
  // many place holder node(s)" (Section 3.1).
  std::vector<core::LogicalPtr> fragments;
  double rapid_seconds = 0;   // estimated fragment cost on RAPID
  double local_seconds = 0;   // estimated System-X-only cost
  std::string reason;
};

class OffloadPlanner {
 public:
  OffloadPlanner(const dpu::DpuConfig& config, const dpu::CostParams& params)
      : estimator_(config, params) {}

  // Decides how much of `plan` to offload given what is loaded into
  // the RAPID engine.
  OffloadDecision Decide(const core::LogicalPtr& plan,
                         const core::RapidEngine& engine,
                         const core::Catalog& host_catalog) const;

  // Tables referenced by the subtree.
  static void CollectTables(const core::LogicalPtr& plan,
                            std::vector<std::string>* out);

  // True if every operator of the subtree is supported by RAPID and
  // every referenced table is loaded.
  static bool Offloadable(const core::LogicalPtr& plan,
                          const core::RapidEngine& engine);

 private:
  // Rough cost estimates driving the cost-based decision.
  double EstimateRapidSeconds(const core::LogicalPtr& plan,
                              const core::Catalog& catalog) const;
  double EstimateLocalSeconds(const core::LogicalPtr& plan,
                              const core::Catalog& catalog) const;

  core::CostEstimator estimator_;
};

class RapidOperator;

// Result of executing a query through the host with offload.
struct QueryReport {
  core::ColumnSet rows;
  bool offloaded = false;
  bool fell_back = false;  // admission or DPU failure -> local plan
  // Human-readable reason(s) the query (or fragments of it) left the
  // RAPID path; empty when nothing fell back.
  std::string fallback_reason;
  OffloadDecision::Kind decision = OffloadDecision::Kind::kNone;
  double rapid_wall_seconds = 0;     // time spent executing in RAPID
  double rapid_modeled_seconds = 0;  // modeled DPU time of the fragment
  double host_wall_seconds = 0;      // host-side execution + post-processing
  core::ExecutionStats rapid_stats;
  // Completed DPU subtree results the host fallback resumed from
  // instead of recomputing (0 when nothing fell back or nothing had
  // completed).
  uint64_t reused_fragments = 0;
  // Fragment-checkpoint accounting summed over the query's RAPID
  // placeholders (whether or not they ultimately fell back):
  // partition rounds restored instead of re-executed, fused-pipeline
  // morsels skipped by mid-step resume, and in-place DPU retries
  // spent (bounded by RAPID_RETRY_BUDGET / ExecOptions::retry_budget).
  uint64_t reused_rounds = 0;
  uint64_t resumed_morsels = 0;
  uint64_t dpu_retries = 0;
  // Encoded-scan accounting summed over the RAPID placeholders: bytes
  // the DMS moved as RLE runs, the plain bytes those tiles would have
  // cost, and predicate evaluations resolved at run level.
  uint64_t encoded_bytes_moved = 0;
  uint64_t plain_bytes_moved = 0;
  uint64_t runs_filtered = 0;
  // Join-filter pushdown accounting (RAPID_JOIN_FILTER): build-side
  // Bloom filters built, probe rows they pruned before the DMS
  // round trips, and the bytes those filters occupied.
  uint64_t join_filter_built = 0;
  uint64_t rows_pruned_by_join_filter = 0;
  uint64_t filter_bytes = 0;

  // Folds one placeholder's accounting into the report: fallback
  // bookkeeping, wall/modeled time, checkpoint reuse, encoded-scan and
  // join-filter counters. Called once per fragment by ExecuteQuery.
  void Merge(const RapidOperator& op);

  // Stable one-line key=value summary for logs and examples. Keys and
  // their order are part of the format; values in fixed units
  // (milliseconds, bytes, counts).
  std::string Summary() const;
};

// The RAPID placeholder operator: checks admissibility, triggers
// RAPID execution of the fragment and serves its buffered rows; falls
// back to local execution when admission is denied.
class RapidOperator : public Iterator {
 public:
  RapidOperator(core::LogicalPtr fragment, core::RapidEngine* engine,
                const ScnJournal* journal, uint64_t query_scn,
                const core::Catalog* host_catalog,
                const core::ExecOptions& options);

  Status Start() override;
  Result<bool> Fetch(Row* row) override;
  void Close() override;

  bool fell_back() const { return fell_back_; }
  // Why the fragment left the RAPID path: kAdmissionDenied, or the DPU
  // execution status that triggered host re-execution. OK when the
  // fragment ran on RAPID.
  const Status& fallback_reason() const { return fallback_reason_; }
  double rapid_wall_seconds() const { return rapid_wall_seconds_; }
  const core::ExecutionStats& rapid_stats() const { return rapid_stats_; }
  // Completed DPU subtree results the host fallback resumed from
  // (materialized-node overrides) instead of recomputing.
  size_t reused_fragments() const { return reused_fragments_; }
  // Checkpoint accounting for this placeholder's fragment. Valid on
  // both outcomes: from the engine's stats when the fragment ran on
  // RAPID, from the engine's FallbackInfo when it fell back.
  uint64_t reused_rounds() const {
    return fell_back_ ? fallback_info_.reused_rounds
                      : rapid_stats_.reused_rounds;
  }
  uint64_t resumed_morsels() const {
    return fell_back_ ? fallback_info_.resumed_morsels
                      : rapid_stats_.resumed_morsels;
  }
  uint64_t dpu_retries() const {
    return fell_back_ ? fallback_info_.dpu_retries
                      : rapid_stats_.dpu_retries;
  }
  // Encoded-scan accounting; zero when the fragment fell back (the
  // host re-execution moves no DMS bytes at all).
  uint64_t encoded_bytes_moved() const {
    return fell_back_ ? 0 : rapid_stats_.encoded_bytes_moved;
  }
  uint64_t plain_bytes_moved() const {
    return fell_back_ ? 0 : rapid_stats_.plain_bytes_moved;
  }
  uint64_t runs_filtered() const {
    return fell_back_ ? 0 : rapid_stats_.runs_filtered;
  }
  // Join-filter accounting; zero when the fragment fell back (the
  // host re-execution builds no Bloom filters and prunes nothing).
  uint64_t join_filter_built() const {
    return fell_back_ ? 0 : rapid_stats_.join_filter_built;
  }
  uint64_t rows_pruned_by_join_filter() const {
    return fell_back_ ? 0 : rapid_stats_.rows_pruned_by_join_filter;
  }
  uint64_t filter_bytes() const {
    return fell_back_ ? 0 : rapid_stats_.filter_bytes;
  }

 private:
  core::LogicalPtr fragment_;
  core::RapidEngine* engine_;
  const ScnJournal* journal_;
  uint64_t query_scn_;
  const core::Catalog* host_catalog_;
  core::ExecOptions options_;

  core::ColumnSet buffered_;
  size_t cursor_ = 0;
  bool fell_back_ = false;
  Status fallback_reason_ = Status::OK();
  double rapid_wall_seconds_ = 0;
  core::ExecutionStats rapid_stats_;
  // Checkpoint harvest of the failed DPU run: completed subtree
  // results (kept alive while the Volcano fallback reads them through
  // node overrides) plus the reuse/retry accounting.
  core::FallbackInfo fallback_info_;
  size_t reused_fragments_ = 0;
};

}  // namespace rapid::hostdb

#endif  // RAPID_HOSTDB_OFFLOAD_H_
