#include "hostdb/journal.h"

namespace rapid::hostdb {

void ScnJournal::Record(const std::string& table, uint64_t scn,
                        std::vector<storage::RowChange> changes) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_[table].push_back(Entry{scn, std::move(changes)});
}

size_t ScnJournal::PendingCount(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(table);
  return it == pending_.end() ? 0 : it->second.size();
}

bool ScnJournal::Admissible(const std::string& table,
                            uint64_t query_scn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(table);
  if (it == pending_.end()) return true;
  for (const Entry& entry : it->second) {
    if (entry.scn <= query_scn) return false;  // unpropagated, visible change
  }
  return true;
}

Status ScnJournal::Checkpoint(const std::string& table,
                              core::RapidEngine* engine) {
  for (;;) {
    Entry entry;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(table);
      if (it == pending_.end() || it->second.empty()) return Status::OK();
      entry = std::move(it->second.front());
      it->second.pop_front();
    }
    // Applied outside the lock; a failure re-queues at the front so
    // nothing is lost and ordering is preserved.
    std::vector<storage::RowChange> changes = entry.changes;
    Status st = engine->ApplyUpdate(table, entry.scn, std::move(changes));
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      pending_[table].push_front(std::move(entry));
      return st;
    }
  }
}

Status ScnJournal::CheckpointAll(core::RapidEngine* engine) {
  std::vector<std::string> tables;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [table, entries] : pending_) tables.push_back(table);
  }
  for (const std::string& table : tables) {
    RAPID_RETURN_NOT_OK(Checkpoint(table, engine));
  }
  return Status::OK();
}

}  // namespace rapid::hostdb
