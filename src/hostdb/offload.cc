#include "hostdb/offload.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>

#include "common/trace.h"
#include "core/qcomp/plan_serde.h"
#include "storage/encoding_stack.h"

namespace rapid::hostdb {

void OffloadPlanner::CollectTables(const core::LogicalPtr& plan,
                                   std::vector<std::string>* out) {
  if (plan == nullptr) return;
  if (plan->kind == core::LogicalNode::Kind::kScan) {
    if (std::find(out->begin(), out->end(), plan->table) == out->end()) {
      out->push_back(plan->table);
    }
  }
  CollectTables(plan->input, out);
  CollectTables(plan->right, out);
}

bool OffloadPlanner::Offloadable(const core::LogicalPtr& plan,
                                 const core::RapidEngine& engine) {
  if (plan == nullptr) return false;
  // All relational operators in this reproduction are supported by
  // RAPID (scan/filter/project/join/group-by/sort/top-k/set-op/
  // window); the binding condition is table residency.
  std::vector<std::string> tables;
  CollectTables(plan, &tables);
  for (const std::string& t : tables) {
    if (engine.GetTable(t) == nullptr) return false;
  }
  return true;
}

double OffloadPlanner::EstimateRapidSeconds(
    const core::LogicalPtr& plan, const core::Catalog& catalog) const {
  if (plan == nullptr) return 0;
  double cost = EstimateRapidSeconds(plan->input, catalog) +
                EstimateRapidSeconds(plan->right, catalog);
  using Kind = core::LogicalNode::Kind;
  switch (plan->kind) {
    case Kind::kScan: {
      auto it = catalog.find(plan->table);
      const size_t rows = it == catalog.end() ? 0 : it->second.num_rows();
      // Width-weighted compression ratio of the scanned table: under
      // encoded scans the DMS moves the encoded bytes, so the offload
      // comparison credits RAPID with the smaller transfer.
      double ratio = 1.0;
      if (it != catalog.end() &&
          storage::EncodedScanActive() == storage::EncodedScanMode::kAuto) {
        const storage::Table& t = it->second;
        double plain = 0.0;
        double enc = 0.0;
        for (size_t c = 0; c < t.schema().num_fields(); ++c) {
          const auto w = static_cast<double>(
              storage::WidthOf(t.schema().field(c).type));
          plain += w;
          enc += w / std::max(1.0, t.stats(c).compression_ratio);
        }
        if (enc > 0) ratio = plain / enc;
      }
      cost += estimator_.ScanSeconds(rows, 8 * std::max<size_t>(
                                               1, plan->columns.size()),
                                     plan->predicates.size(), 0.5, ratio);
      break;
    }
    case Kind::kJoin: {
      // Child sizes approximated by the scanned base tables.
      std::vector<std::string> lt;
      std::vector<std::string> rt;
      CollectTables(plan->input, &lt);
      CollectTables(plan->right, &rt);
      size_t lrows = 0;
      size_t rrows = 0;
      for (const auto& t : lt) {
        auto it = catalog.find(t);
        if (it != catalog.end()) lrows += it->second.num_rows();
      }
      for (const auto& t : rt) {
        auto it = catalog.find(t);
        if (it != catalog.end()) rrows += it->second.num_rows();
      }
      cost += estimator_.JoinSeconds(std::min(lrows, rrows),
                                     std::max(lrows, rrows), 16, 1);
      break;
    }
    case Kind::kGroupBy:
      cost += estimator_.GroupBySeconds(1 << 16, 64,
                                        plan->aggregates.size(), true);
      break;
    case Kind::kSort:
    case Kind::kTopK:
      cost += estimator_.SortSeconds(1 << 16, 8);
      break;
    default:
      break;
  }
  return cost;
}

double OffloadPlanner::EstimateLocalSeconds(
    const core::LogicalPtr& plan, const core::Catalog& catalog) const {
  // System X interprets tuple-at-a-time: ~100 ns per row per operator
  // on the host CPU — the cost model the host compiler uses when
  // comparing against the RAPID offload estimate.
  if (plan == nullptr) return 0;
  double cost = EstimateLocalSeconds(plan->input, catalog) +
                EstimateLocalSeconds(plan->right, catalog);
  if (plan->kind == core::LogicalNode::Kind::kScan) {
    auto it = catalog.find(plan->table);
    const size_t rows = it == catalog.end() ? 0 : it->second.num_rows();
    cost += static_cast<double>(rows) *
            (1.0 + static_cast<double>(plan->predicates.size())) * 100e-9;
  } else {
    cost += 1e-6;  // per-operator overhead
  }
  return cost;
}

OffloadDecision OffloadPlanner::Decide(const core::LogicalPtr& plan,
                                       const core::RapidEngine& engine,
                                       const core::Catalog& host_catalog) const {
  OffloadDecision decision;
  decision.local_seconds = EstimateLocalSeconds(plan, host_catalog);

  if (Offloadable(plan, engine)) {
    decision.rapid_seconds = EstimateRapidSeconds(plan, host_catalog);
    // Network transfer + post-processing of the (small) root result is
    // folded into a fixed term; full offload wins unless RAPID costs
    // more outright.
    if (decision.rapid_seconds + 1e-6 < decision.local_seconds) {
      decision.kind = OffloadDecision::Kind::kFull;
      decision.fragments = {plan};
      decision.reason = "all operators supported, tables resident";
      return decision;
    }
    decision.kind = OffloadDecision::Kind::kNone;
    decision.reason = "RAPID estimate not cheaper than local";
    return decision;
  }

  // Partial offload: every *maximal* offloadable subtree becomes a
  // placeholder (bottom-up fragment search, Section 3.1).
  std::function<void(const core::LogicalPtr&)> visit =
      [&](const core::LogicalPtr& node) {
        if (node == nullptr) return;
        if (Offloadable(node, engine)) {
          decision.fragments.push_back(node);
          decision.rapid_seconds +=
              EstimateRapidSeconds(node, host_catalog);
          return;  // children are included already
        }
        visit(node->input);
        visit(node->right);
      };
  visit(plan->input);
  visit(plan->right);

  if (!decision.fragments.empty()) {
    decision.kind = OffloadDecision::Kind::kPartial;
    decision.reason =
        "fragment offload: " + std::to_string(decision.fragments.size()) +
        " resident subtree(s)";
  } else {
    decision.kind = OffloadDecision::Kind::kNone;
    decision.reason = "no offloadable fragment (tables not loaded)";
  }
  return decision;
}

void QueryReport::Merge(const RapidOperator& op) {
  offloaded = offloaded && !op.fell_back();
  fell_back = fell_back || op.fell_back();
  if (op.fell_back()) {
    if (!fallback_reason.empty()) fallback_reason += "; ";
    fallback_reason += op.fallback_reason().ToString();
  }
  rapid_wall_seconds += op.rapid_wall_seconds();
  rapid_modeled_seconds += op.rapid_stats().modeled_seconds;
  reused_fragments += op.reused_fragments();
  reused_rounds += op.reused_rounds();
  resumed_morsels += op.resumed_morsels();
  dpu_retries += op.dpu_retries();
  encoded_bytes_moved += op.encoded_bytes_moved();
  plain_bytes_moved += op.plain_bytes_moved();
  runs_filtered += op.runs_filtered();
  join_filter_built += op.join_filter_built();
  rows_pruned_by_join_filter += op.rows_pruned_by_join_filter();
  filter_bytes += op.filter_bytes();
}

std::string QueryReport::Summary() const {
  const char* kind = decision == OffloadDecision::Kind::kFull      ? "full"
                     : decision == OffloadDecision::Kind::kPartial ? "partial"
                                                                   : "none";
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "rows=%zu offload=%s offloaded=%d fell_back=%d modeled_ms=%.3f "
      "rapid_wall_ms=%.3f host_wall_ms=%.3f encoded_bytes=%llu "
      "plain_bytes=%llu pruned=%llu reused_rounds=%llu retries=%llu",
      rows.num_rows(), kind, offloaded ? 1 : 0, fell_back ? 1 : 0,
      rapid_modeled_seconds * 1e3, rapid_wall_seconds * 1e3,
      host_wall_seconds * 1e3,
      static_cast<unsigned long long>(encoded_bytes_moved),
      static_cast<unsigned long long>(plain_bytes_moved),
      static_cast<unsigned long long>(rows_pruned_by_join_filter),
      static_cast<unsigned long long>(reused_rounds),
      static_cast<unsigned long long>(dpu_retries));
  return std::string(buf);
}

namespace {

// Walks the fragment to the logical node at `path` ('0' descends into
// input/left, '1' into right — the planner's subtree addressing).
// Returns nullptr when the path does not exist in this tree.
const core::LogicalNode* ResolvePath(const core::LogicalPtr& root,
                                     const std::string& path) {
  const core::LogicalNode* node = root.get();
  for (const char edge : path) {
    if (node == nullptr) return nullptr;
    node = edge == '0' ? node->input.get() : node->right.get();
  }
  return node;
}

}  // namespace

RapidOperator::RapidOperator(core::LogicalPtr fragment,
                             core::RapidEngine* engine,
                             const ScnJournal* journal, uint64_t query_scn,
                             const core::Catalog* host_catalog,
                             const core::ExecOptions& options)
    : fragment_(std::move(fragment)),
      engine_(engine),
      journal_(journal),
      query_scn_(query_scn),
      host_catalog_(host_catalog),
      options_(options) {}

Status RapidOperator::Start() {
  fallback_reason_ = Status::OK();
  fallback_info_ = core::FallbackInfo{};
  reused_fragments_ = 0;
  // Admissibility: every table the fragment touches must have all
  // changes visible at the query SCN already propagated.
  std::vector<std::string> tables;
  OffloadPlanner::CollectTables(fragment_, &tables);
  bool admissible = true;
  for (const std::string& t : tables) {
    if (!journal_->Admissible(t, query_scn_)) {
      admissible = false;
      fallback_reason_ = Status::AdmissionDenied(
          "table '" + t + "' has unpropagated changes at SCN " +
          std::to_string(query_scn_));
      break;
    }
  }

  if (admissible) {
    // Section 3.1/3.2: the compiler serializes the QEP into the
    // placeholder; the RAPID node instantiates the received plan. The
    // fragment round-trips through the wire format here so every
    // offloaded query exercises that path.
    const std::string wire = core::SerializePlan(fragment_);
    auto received = core::ParsePlan(wire);
    const auto start = std::chrono::steady_clock::now();
    auto result =
        received.ok()
            ? engine_->Execute(received.value(), options_, &fallback_info_)
            : Result<core::QueryResult>(received.status());
    const auto end = std::chrono::steady_clock::now();
    if (result.ok()) {
      buffered_ = std::move(result.value().rows);
      rapid_stats_ = result.value().stats;
      rapid_wall_seconds_ =
          std::chrono::duration<double>(end - start).count();
      schema_ = buffered_.metas();
      cursor_ = 0;
      fell_back_ = false;
      return Status::OK();
    }
    // Cancellation-class statuses are terminal for the *query*, not
    // evidence of DPU trouble: re-running the fragment on the host
    // would silently resurrect a query the user killed. Propagate.
    if (result.status().IsCancellation()) return result.status();
    // Any other mid-fragment DPU failure (descriptor retry exhaustion,
    // capacity faults, OOM that survived demotion, ...) falls back to
    // host execution (Section 3.2), with the reason recorded for the
    // offload decision stats.
    fallback_reason_ = result.status();
  }

  // Fallback: System-X-only execution of the fragment. Subtrees the
  // DPU run did complete before failing (up to and including its
  // in-place checkpoint retries) are injected as materialized node
  // overrides so the host resumes from them instead of recomputing
  // (admission denials harvested nothing, so those still re-execute
  // from scratch).
  fell_back_ = true;
  TraceSpan graft(TraceMode::kSummary, TraceCollector::kTrackHost,
                  "offload.fallback_graft");
  if (graft.active()) {
    graft.Annotate("reason", TraceCollector::Instance().Intern(
                                 fallback_reason_.ToString()));
  }
  std::vector<core::PartialResult>& partials = fallback_info_.partials;
  std::stable_sort(partials.begin(), partials.end(),
                   [](const core::PartialResult& a,
                      const core::PartialResult& b) {
                     return a.path.size() < b.path.size();
                   });
  std::vector<core::PartialResult> kept;
  kept.reserve(partials.size());
  for (auto& pr : partials) {
    // Shallowest-first: a subtree under an already-kept ancestor is
    // shadowed by it — the Volcano walk never reaches the deeper node.
    const auto covered = [&kept](const std::string& path) {
      for (const auto& k : kept) {
        if (path.compare(0, k.path.size(), k.path) == 0) return true;
      }
      return false;
    };
    // Checkpoint addresses carrying a '#' marker are partition-round
    // fragments; the engine flattens reusable ones to plain paths, so
    // anything still marked has no Volcano counterpart here.
    if (pr.path.find('#') != std::string::npos) continue;
    if (covered(pr.path)) continue;
    if (ResolvePath(fragment_, pr.path) == nullptr) continue;
    kept.push_back(std::move(pr));
  }
  partials = std::move(kept);
  NodeOverrides overrides;
  for (const auto& pr : partials) {
    overrides[ResolvePath(fragment_, pr.path)] = &pr.rows;
  }
  reused_fragments_ = overrides.size();
  graft.Annotate("reused_fragments", static_cast<int64_t>(reused_fragments_));
  RAPID_ASSIGN_OR_RETURN(
      buffered_,
      VolcanoExecutor::Execute(fragment_, *host_catalog_, overrides));
  schema_ = buffered_.metas();
  cursor_ = 0;
  return Status::OK();
}

Result<bool> RapidOperator::Fetch(Row* row) {
  if (cursor_ >= buffered_.num_rows()) return false;
  row->resize(buffered_.num_columns());
  for (size_t c = 0; c < buffered_.num_columns(); ++c) {
    (*row)[c] = buffered_.Value(cursor_, c);
  }
  ++cursor_;
  return true;
}

void RapidOperator::Close() {}

}  // namespace rapid::hostdb
