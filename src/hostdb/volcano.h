// Volcano plan builder: lowers the same logical plans RAPID executes
// into a pull-based iterator tree over the host's tables. This is the
// System-X-only execution path — the fallback when offload is denied,
// and the measured baseline of the software comparison (Figure 16).

#ifndef RAPID_HOSTDB_VOLCANO_H_
#define RAPID_HOSTDB_VOLCANO_H_

#include <unordered_map>

#include "core/qcomp/logical_plan.h"
#include "core/qcomp/planner.h"
#include "hostdb/iterator.h"

namespace rapid::hostdb {

// Maps a logical node to a pre-materialized result; used for partial
// offload, where a subtree was executed by RAPID and the host consumes
// its rows through the placeholder.
using NodeOverrides =
    std::unordered_map<const core::LogicalNode*, const core::ColumnSet*>;

class VolcanoExecutor {
 public:
  // Builds the iterator tree for `plan` over `catalog`.
  static Result<IteratorPtr> Build(const core::LogicalPtr& plan,
                                   const core::Catalog& catalog,
                                   const NodeOverrides& overrides = {});

  // Builds, drains and returns all rows.
  static Result<core::ColumnSet> Execute(const core::LogicalPtr& plan,
                                         const core::Catalog& catalog,
                                         const NodeOverrides& overrides = {});
};

// Iterator over an already-materialized ColumnSet (also the public
// face of the RAPID placeholder operator's buffered result).
class MaterializedIter : public Iterator {
 public:
  explicit MaterializedIter(const core::ColumnSet* set) : set_(set) {
    schema_ = set->metas();
  }

  Status Start() override {
    cursor_ = 0;
    return Status::OK();
  }

  Result<bool> Fetch(Row* row) override {
    if (cursor_ >= set_->num_rows()) return false;
    row->resize(set_->num_columns());
    for (size_t c = 0; c < set_->num_columns(); ++c) {
      (*row)[c] = set_->Value(cursor_, c);
    }
    ++cursor_;
    return true;
  }

  void Close() override {}

 private:
  const core::ColumnSet* set_;
  size_t cursor_ = 0;
};

}  // namespace rapid::hostdb

#endif  // RAPID_HOSTDB_VOLCANO_H_
