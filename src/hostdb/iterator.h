// System X execution engine: a pull-based (Volcano) iterator model
// (Section 3.2). "Each operator implements a set of methods:
// allocate(), start(), fetch(), close() and release(). Execution
// proceeds top to bottom and results are propagated bottom-up."
//
// This row-at-a-time engine is the measured baseline for the
// software-only comparison (Figure 16): same data, same logical plans,
// but tuple-at-a-time interpretation instead of RAPID's vectorized
// push-based execution.

#ifndef RAPID_HOSTDB_ITERATOR_H_
#define RAPID_HOSTDB_ITERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/expr.h"
#include "core/qef/column_set.h"

namespace rapid::hostdb {

using Row = std::vector<int64_t>;

// Pull-based operator interface with the paper's lifecycle methods.
// allocate() maps to construction, release() to destruction.
class Iterator {
 public:
  virtual ~Iterator() = default;

  virtual Status Start() = 0;
  // Fills `row` and returns true, or returns false at end of data.
  virtual Result<bool> Fetch(Row* row) = 0;
  virtual void Close() = 0;

  const std::vector<core::ColumnMeta>& schema() const { return schema_; }

  // Position of `name` in this operator's output schema.
  Result<size_t> IndexOf(const std::string& name) const {
    for (size_t i = 0; i < schema_.size(); ++i) {
      if (schema_[i].name == name) return i;
    }
    return Status::NotFound("no column named '" + name + "'");
  }

 protected:
  std::vector<core::ColumnMeta> schema_;
};

using IteratorPtr = std::unique_ptr<Iterator>;

// Scalar (row-at-a-time) expression evaluation; mirrors the vectorized
// core::EvalExpr semantics exactly (DSB scale handling included) so
// both engines produce bit-identical encoded results.
Result<int64_t> EvalExprRow(const core::Expr& expr, const Row& row,
                            const std::vector<core::ColumnMeta>& schema,
                            int* out_scale);

// Scalar predicate evaluation.
Result<bool> EvalPredicateRow(const core::Predicate& pred, const Row& row,
                              const std::vector<core::ColumnMeta>& schema);

// Drains an iterator into a ColumnSet (the host's result buffer).
Result<core::ColumnSet> DrainToColumnSet(Iterator* it);

}  // namespace rapid::hostdb

#endif  // RAPID_HOSTDB_ITERATOR_H_
