#include "hostdb/iterator.h"

#include "storage/dsb.h"

namespace rapid::hostdb {

namespace {

Result<size_t> Find(const std::vector<core::ColumnMeta>& schema,
                    const std::string& name) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i].name == name) return i;
  }
  return Status::NotFound("unbound column '" + name + "'");
}

}  // namespace

Result<int64_t> EvalExprRow(const core::Expr& expr, const Row& row,
                            const std::vector<core::ColumnMeta>& schema,
                            int* out_scale) {
  using Kind = core::Expr::Kind;
  switch (expr.kind) {
    case Kind::kColumn: {
      RAPID_ASSIGN_OR_RETURN(size_t idx, Find(schema, expr.column));
      *out_scale = schema[idx].dsb_scale;
      return row[idx];
    }
    case Kind::kConst:
      *out_scale = expr.scale;
      return expr.value;
    case Kind::kBinary: {
      int lscale = 0;
      int rscale = 0;
      RAPID_ASSIGN_OR_RETURN(int64_t lhs,
                             EvalExprRow(*expr.left, row, schema, &lscale));
      RAPID_ASSIGN_OR_RETURN(int64_t rhs,
                             EvalExprRow(*expr.right, row, schema, &rscale));
      using primitives::ArithOp;
      if (expr.op == ArithOp::kMul) {
        *out_scale = lscale + rscale;
        return lhs * rhs;
      }
      const int scale = lscale > rscale ? lscale : rscale;
      if (lscale < scale) lhs *= storage::Pow10(scale - lscale);
      if (rscale < scale) rhs *= storage::Pow10(scale - rscale);
      *out_scale = scale;
      return expr.op == ArithOp::kAdd ? lhs + rhs : lhs - rhs;
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<bool> EvalPredicateRow(const core::Predicate& pred, const Row& row,
                              const std::vector<core::ColumnMeta>& schema) {
  using Kind = core::Predicate::Kind;
  RAPID_ASSIGN_OR_RETURN(size_t idx, Find(schema, pred.column));
  const int64_t v = row[idx];
  auto cmp = [](primitives::CmpOp op, int64_t a, int64_t b) {
    using primitives::CmpOp;
    switch (op) {
      case CmpOp::kEq:
        return a == b;
      case CmpOp::kNe:
        return a != b;
      case CmpOp::kLt:
        return a < b;
      case CmpOp::kLe:
        return a <= b;
      case CmpOp::kGt:
        return a > b;
      case CmpOp::kGe:
        return a >= b;
    }
    return false;
  };
  switch (pred.kind) {
    case Kind::kCmpConst:
      return cmp(pred.op, v, pred.value);
    case Kind::kBetween:
      return v >= pred.value && v <= pred.value2;
    case Kind::kInSet:
      return static_cast<uint64_t>(v) < pred.in_set.size() &&
             pred.in_set.Test(static_cast<size_t>(v));
    case Kind::kCmpCol: {
      RAPID_ASSIGN_OR_RETURN(size_t idx2, Find(schema, pred.column2));
      return cmp(pred.op, v, row[idx2]);
    }
  }
  return Status::Internal("unreachable predicate kind");
}

Result<core::ColumnSet> DrainToColumnSet(Iterator* it) {
  RAPID_RETURN_NOT_OK(it->Start());
  core::ColumnSet out(it->schema());
  Row row;
  for (;;) {
    RAPID_ASSIGN_OR_RETURN(bool ok, it->Fetch(&row));
    if (!ok) break;
    out.AppendRow(row);
  }
  it->Close();
  return out;
}

}  // namespace rapid::hostdb
