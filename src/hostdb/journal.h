// SCN journal and query checkpointing (Section 3.3).
//
// The host database is the single source of truth. Changes are
// collected in in-memory journals per table; background checkpointing
// scans the journals and propagates pending changes to RAPID. A query
// with SCN s is admissible to RAPID only if every change with
// scn <= s on every table it touches has already been propagated —
// otherwise RAPID would compute on stale data.

#ifndef RAPID_HOSTDB_JOURNAL_H_
#define RAPID_HOSTDB_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "storage/update.h"

namespace rapid::hostdb {

// Thread-safe: the background checkpointer reads/propagates while the
// foreground records changes.
class ScnJournal {
 public:
  // Allocates the next system change number.
  uint64_t NextScn() {
    std::lock_guard<std::mutex> lock(mu_);
    return ++current_scn_;
  }
  uint64_t current_scn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_scn_;
  }

  // Records a committed change batch for `table` at `scn`.
  void Record(const std::string& table, uint64_t scn,
              std::vector<storage::RowChange> changes);

  // Number of journal entries not yet propagated to RAPID.
  size_t PendingCount(const std::string& table) const;

  // True if all changes to `table` visible at `query_scn` have been
  // propagated to RAPID (the admissibility condition).
  bool Admissible(const std::string& table, uint64_t query_scn) const;

  // Query checkpointing: propagates all pending entries for `table`
  // into the RAPID engine via its tracker. Called by the periodic
  // background thread in the paper; explicit here for determinism.
  Status Checkpoint(const std::string& table, core::RapidEngine* engine);

  // Checkpoints every table with pending changes.
  Status CheckpointAll(core::RapidEngine* engine);

 private:
  struct Entry {
    uint64_t scn = 0;
    std::vector<storage::RowChange> changes;
  };

  mutable std::mutex mu_;
  uint64_t current_scn_ = 1;
  std::unordered_map<std::string, std::deque<Entry>> pending_;
};

}  // namespace rapid::hostdb

#endif  // RAPID_HOSTDB_JOURNAL_H_
