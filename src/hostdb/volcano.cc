#include "hostdb/volcano.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "common/crc32.h"
#include "storage/dsb.h"

namespace rapid::hostdb {

namespace {

using core::ColumnMeta;
using core::ColumnSet;
using core::LogicalNode;
using core::LogicalPtr;

// ---- Scan ------------------------------------------------------------------

class ScanIter : public Iterator {
 public:
  ScanIter(const storage::Table* table, std::vector<std::string> columns,
           std::vector<core::Predicate> predicates)
      : table_(table),
        columns_(std::move(columns)),
        predicates_(std::move(predicates)) {}

  Status Start() override {
    col_indices_.clear();
    schema_.clear();
    // The scan exposes the union of requested columns and predicate
    // columns; a parent projection trims.
    std::vector<std::string> cols = columns_;
    for (const core::Predicate& p : predicates_) {
      if (std::find(cols.begin(), cols.end(), p.column) == cols.end()) {
        cols.push_back(p.column);
      }
      if (p.kind == core::Predicate::Kind::kCmpCol &&
          std::find(cols.begin(), cols.end(), p.column2) == cols.end()) {
        cols.push_back(p.column2);
      }
    }
    for (const std::string& name : cols) {
      RAPID_ASSIGN_OR_RETURN(size_t idx, table_->schema().IndexOf(name));
      col_indices_.push_back(idx);
      ColumnMeta m;
      m.name = name;
      m.type = table_->schema().field(idx).type;
      m.dsb_scale = table_->stats(idx).dsb_scale;
      schema_.push_back(m);
    }
    partition_ = 0;
    chunk_ = 0;
    row_ = 0;
    return Status::OK();
  }

  Result<bool> Fetch(Row* row) override {
    for (;;) {
      const storage::Chunk* chunk = CurrentChunk();
      if (chunk == nullptr) return false;
      if (row_ >= chunk->num_rows()) {
        Advance();
        continue;
      }
      row->resize(col_indices_.size());
      for (size_t c = 0; c < col_indices_.size(); ++c) {
        const storage::Vector& v = chunk->column(col_indices_[c]);
        int64_t value = v.GetInt(row_);
        // Normalize per-vector DSB scales to the column scale.
        if (v.type() == storage::DataType::kDecimal &&
            v.dsb_scale() != schema_[c].dsb_scale) {
          value *= storage::Pow10(schema_[c].dsb_scale - v.dsb_scale());
        }
        (*row)[c] = value;
      }
      ++row_;
      // Row-at-a-time predicate interpretation (the System X way).
      bool pass = true;
      for (const core::Predicate& p : predicates_) {
        RAPID_ASSIGN_OR_RETURN(bool ok, EvalPredicateRow(p, *row, schema_));
        if (!ok) {
          pass = false;
          break;
        }
      }
      if (pass) return true;
    }
  }

  void Close() override {}

 private:
  const storage::Chunk* CurrentChunk() {
    while (partition_ < table_->num_partitions()) {
      const storage::Partition& part = table_->partition(partition_);
      if (chunk_ < part.num_chunks()) return &part.chunk(chunk_);
      ++partition_;
      chunk_ = 0;
    }
    return nullptr;
  }

  void Advance() {
    ++chunk_;
    row_ = 0;
  }

  const storage::Table* table_;
  std::vector<std::string> columns_;
  std::vector<core::Predicate> predicates_;
  std::vector<size_t> col_indices_;
  size_t partition_ = 0;
  size_t chunk_ = 0;
  size_t row_ = 0;
};

// ---- Filter / Project ------------------------------------------------------

class FilterIter : public Iterator {
 public:
  FilterIter(IteratorPtr child, std::vector<core::Predicate> predicates)
      : child_(std::move(child)), predicates_(std::move(predicates)) {}

  Status Start() override {
    RAPID_RETURN_NOT_OK(child_->Start());
    schema_ = child_->schema();
    return Status::OK();
  }

  Result<bool> Fetch(Row* row) override {
    for (;;) {
      RAPID_ASSIGN_OR_RETURN(bool ok, child_->Fetch(row));
      if (!ok) return false;
      bool pass = true;
      for (const core::Predicate& p : predicates_) {
        RAPID_ASSIGN_OR_RETURN(bool hit, EvalPredicateRow(p, *row, schema_));
        if (!hit) {
          pass = false;
          break;
        }
      }
      if (pass) return true;
    }
  }

  void Close() override { child_->Close(); }

 private:
  IteratorPtr child_;
  std::vector<core::Predicate> predicates_;
};

class ProjectIter : public Iterator {
 public:
  ProjectIter(IteratorPtr child,
              std::vector<std::pair<std::string, core::ExprPtr>> projections)
      : child_(std::move(child)), projections_(std::move(projections)) {}

  Status Start() override {
    RAPID_RETURN_NOT_OK(child_->Start());
    schema_.clear();
    // Scales are value-independent; derive them from a zero row.
    Row zero(child_->schema().size(), 0);
    for (const auto& [name, expr] : projections_) {
      int scale = 0;
      RAPID_RETURN_NOT_OK(
          EvalExprRow(*expr, zero, child_->schema(), &scale).status());
      ColumnMeta m;
      m.name = name;
      m.dsb_scale = scale;
      m.type = scale != 0 ? storage::DataType::kDecimal
                          : storage::DataType::kInt64;
      schema_.push_back(m);
    }
    return Status::OK();
  }

  Result<bool> Fetch(Row* row) override {
    Row in;
    RAPID_ASSIGN_OR_RETURN(bool ok, child_->Fetch(&in));
    if (!ok) return false;
    row->resize(projections_.size());
    for (size_t c = 0; c < projections_.size(); ++c) {
      int scale = 0;
      RAPID_ASSIGN_OR_RETURN(
          (*row)[c],
          EvalExprRow(*projections_[c].second, in, child_->schema(), &scale));
    }
    return true;
  }

  void Close() override { child_->Close(); }

 private:
  IteratorPtr child_;
  std::vector<std::pair<std::string, core::ExprPtr>> projections_;
};

// ---- Hash join ---------------------------------------------------------

class HashJoinIter : public Iterator {
 public:
  HashJoinIter(IteratorPtr build, IteratorPtr probe,
               std::vector<std::string> build_keys,
               std::vector<std::string> probe_keys,
               std::vector<std::string> output_columns, core::JoinType type)
      : build_(std::move(build)),
        probe_(std::move(probe)),
        build_key_names_(std::move(build_keys)),
        probe_key_names_(std::move(probe_keys)),
        output_columns_(std::move(output_columns)),
        type_(type) {}

  Status Start() override {
    RAPID_RETURN_NOT_OK(build_->Start());
    RAPID_RETURN_NOT_OK(probe_->Start());

    for (const std::string& k : build_key_names_) {
      RAPID_ASSIGN_OR_RETURN(size_t idx, build_->IndexOf(k));
      build_keys_.push_back(idx);
    }
    for (const std::string& k : probe_key_names_) {
      RAPID_ASSIGN_OR_RETURN(size_t idx, probe_->IndexOf(k));
      probe_keys_.push_back(idx);
    }

    // Output columns in request order, resolving build-side first —
    // exactly how RAPID's JoinStep resolves them, so both engines
    // produce identical schemas.
    const bool probe_only =
        type_ == core::JoinType::kSemi || type_ == core::JoinType::kAnti;
    schema_.clear();
    outputs_.clear();
    for (const std::string& name : output_columns_) {
      auto b = build_->IndexOf(name);
      if (b.ok() && !probe_only) {
        outputs_.emplace_back(true, b.value());
        schema_.push_back(build_->schema()[b.value()]);
        continue;
      }
      auto p = probe_->IndexOf(name);
      if (p.ok()) {
        outputs_.emplace_back(false, p.value());
        schema_.push_back(probe_->schema()[p.value()]);
        continue;
      }
      return Status::NotFound("join output column '" + name + "' not found");
    }

    // Drain the build side into the hash table.
    Row row;
    for (;;) {
      RAPID_ASSIGN_OR_RETURN(bool ok, build_->Fetch(&row));
      if (!ok) break;
      table_[HashKeys(row, build_keys_)].push_back(row);
    }
    pending_.clear();
    pending_pos_ = 0;
    return Status::OK();
  }

  Result<bool> Fetch(Row* row) override {
    for (;;) {
      if (pending_pos_ < pending_.size()) {
        *row = pending_[pending_pos_++];
        return true;
      }
      pending_.clear();
      pending_pos_ = 0;

      Row probe_row;
      RAPID_ASSIGN_OR_RETURN(bool ok, probe_->Fetch(&probe_row));
      if (!ok) return false;

      size_t matches = 0;
      auto it = table_.find(HashKeys(probe_row, probe_keys_));
      if (it != table_.end()) {
        for (const Row& build_row : it->second) {
          if (!KeysMatch(build_row, probe_row)) continue;
          ++matches;
          if (type_ == core::JoinType::kInner ||
              type_ == core::JoinType::kLeftOuter) {
            pending_.push_back(Combine(&build_row, probe_row));
          }
        }
      }
      switch (type_) {
        case core::JoinType::kSemi:
          if (matches > 0) pending_.push_back(Combine(nullptr, probe_row));
          break;
        case core::JoinType::kAnti:
          if (matches == 0) pending_.push_back(Combine(nullptr, probe_row));
          break;
        case core::JoinType::kLeftOuter:
          if (matches == 0) pending_.push_back(Combine(nullptr, probe_row));
          break;
        case core::JoinType::kInner:
          break;
      }
    }
  }

  void Close() override {
    build_->Close();
    probe_->Close();
  }

 private:
  uint32_t HashKeys(const Row& row, const std::vector<size_t>& keys) const {
    uint32_t h = 0xFFFFFFFFu;
    for (size_t k : keys) h = Crc32Combine(h, static_cast<uint64_t>(row[k]));
    return h;
  }

  bool KeysMatch(const Row& build_row, const Row& probe_row) const {
    for (size_t k = 0; k < build_keys_.size(); ++k) {
      if (build_row[build_keys_[k]] != probe_row[probe_keys_[k]]) return false;
    }
    return true;
  }

  Row Combine(const Row* build_row, const Row& probe_row) const {
    Row out;
    out.reserve(outputs_.size());
    for (const auto& [from_build, c] : outputs_) {
      if (from_build) {
        out.push_back(build_row == nullptr ? core::kJoinNull
                                           : (*build_row)[c]);
      } else {
        out.push_back(probe_row[c]);
      }
    }
    return out;
  }

  IteratorPtr build_;
  IteratorPtr probe_;
  std::vector<std::string> build_key_names_;
  std::vector<std::string> probe_key_names_;
  std::vector<std::string> output_columns_;
  core::JoinType type_;
  std::vector<size_t> build_keys_;
  std::vector<size_t> probe_keys_;
  std::vector<std::pair<bool, size_t>> outputs_;  // (from_build, column)
  std::unordered_map<uint32_t, std::vector<Row>> table_;
  std::vector<Row> pending_;
  size_t pending_pos_ = 0;
};

// ---- Hash aggregation --------------------------------------------------

class HashAggIter : public Iterator {
 public:
  HashAggIter(IteratorPtr child,
              std::vector<std::pair<std::string, core::ExprPtr>> keys,
              std::vector<core::AggSpec> aggs)
      : child_(std::move(child)), keys_(std::move(keys)),
        aggs_(std::move(aggs)) {}

  Status Start() override {
    RAPID_RETURN_NOT_OK(child_->Start());

    // Output schema: keys then aggregates; scales derived statically.
    schema_.clear();
    Row zero(child_->schema().size(), 0);
    for (const auto& [name, expr] : keys_) {
      int scale = 0;
      RAPID_RETURN_NOT_OK(
          EvalExprRow(*expr, zero, child_->schema(), &scale).status());
      ColumnMeta m;
      m.name = name;
      m.dsb_scale = scale;
      m.type = scale != 0 ? storage::DataType::kDecimal
                          : storage::DataType::kInt64;
      schema_.push_back(m);
    }
    for (const core::AggSpec& a : aggs_) {
      int scale = 0;
      if (a.expr != nullptr && a.func != core::AggFunc::kCount) {
        RAPID_RETURN_NOT_OK(
            EvalExprRow(*a.expr, zero, child_->schema(), &scale).status());
      }
      ColumnMeta m;
      m.name = a.name;
      m.dsb_scale = a.func == core::AggFunc::kCount ? 0 : scale;
      m.type = m.dsb_scale != 0 ? storage::DataType::kDecimal
                                : storage::DataType::kInt64;
      schema_.push_back(m);
    }

    // Drain and aggregate row-at-a-time.
    groups_.clear();
    Row row;
    for (;;) {
      RAPID_ASSIGN_OR_RETURN(bool ok, child_->Fetch(&row));
      if (!ok) break;
      Row key(keys_.size());
      for (size_t k = 0; k < keys_.size(); ++k) {
        int scale = 0;
        RAPID_ASSIGN_OR_RETURN(
            key[k], EvalExprRow(*keys_[k].second, row, child_->schema(),
                                &scale));
      }
      auto [it, inserted] = groups_.try_emplace(
          key, std::vector<primitives::AggState>(aggs_.size()));
      for (size_t a = 0; a < aggs_.size(); ++a) {
        const core::AggSpec& spec = aggs_[a];
        if (spec.filter != nullptr) {
          RAPID_ASSIGN_OR_RETURN(
              bool pass, EvalPredicateRow(*spec.filter, row, child_->schema()));
          if (!pass) continue;
        }
        int64_t value = 0;
        if (spec.expr != nullptr) {
          int scale = 0;
          RAPID_ASSIGN_OR_RETURN(
              value, EvalExprRow(*spec.expr, row, child_->schema(), &scale));
        }
        primitives::AggState& st = it->second[a];
        switch (spec.func) {
          case core::AggFunc::kSum:
            st.sum += value;
            break;
          case core::AggFunc::kMin:
            if (value < st.min) st.min = value;
            break;
          case core::AggFunc::kMax:
            if (value > st.max) st.max = value;
            break;
          case core::AggFunc::kCount:
            ++st.count;
            break;
        }
      }
    }
    cursor_ = groups_.begin();
    return Status::OK();
  }

  Result<bool> Fetch(Row* row) override {
    if (cursor_ == groups_.end()) return false;
    row->clear();
    row->insert(row->end(), cursor_->first.begin(), cursor_->first.end());
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const primitives::AggState& st = cursor_->second[a];
      switch (aggs_[a].func) {
        case core::AggFunc::kSum:
          row->push_back(st.sum);
          break;
        case core::AggFunc::kMin:
          row->push_back(st.min);
          break;
        case core::AggFunc::kMax:
          row->push_back(st.max);
          break;
        case core::AggFunc::kCount:
          row->push_back(static_cast<int64_t>(st.count));
          break;
      }
    }
    ++cursor_;
    return true;
  }

  void Close() override { child_->Close(); }

 private:
  IteratorPtr child_;
  std::vector<std::pair<std::string, core::ExprPtr>> keys_;
  std::vector<core::AggSpec> aggs_;
  std::map<Row, std::vector<primitives::AggState>> groups_;
  std::map<Row, std::vector<primitives::AggState>>::iterator cursor_;
};

// ---- Sort / TopK -----------------------------------------------------------

class SortIter : public Iterator {
 public:
  SortIter(IteratorPtr child, std::vector<std::pair<std::string, bool>> keys,
           size_t limit)  // limit 0 = full sort
      : child_(std::move(child)), key_names_(std::move(keys)), limit_(limit) {}

  Status Start() override {
    RAPID_RETURN_NOT_OK(child_->Start());
    schema_ = child_->schema();
    std::vector<std::pair<size_t, bool>> keys;
    for (const auto& [name, asc] : key_names_) {
      RAPID_ASSIGN_OR_RETURN(size_t idx, child_->IndexOf(name));
      keys.emplace_back(idx, asc);
    }
    rows_.clear();
    Row row;
    for (;;) {
      RAPID_ASSIGN_OR_RETURN(bool ok, child_->Fetch(&row));
      if (!ok) break;
      rows_.push_back(row);
    }
    auto less = [&keys](const Row& a, const Row& b) {
      for (const auto& [idx, asc] : keys) {
        if (a[idx] != b[idx]) return asc ? a[idx] < b[idx] : a[idx] > b[idx];
      }
      return false;
    };
    if (limit_ > 0 && limit_ < rows_.size()) {
      std::partial_sort(rows_.begin(),
                        rows_.begin() + static_cast<ptrdiff_t>(limit_),
                        rows_.end(), less);
      rows_.resize(limit_);
    } else {
      std::stable_sort(rows_.begin(), rows_.end(), less);
    }
    cursor_ = 0;
    return Status::OK();
  }

  Result<bool> Fetch(Row* row) override {
    if (cursor_ >= rows_.size()) return false;
    *row = rows_[cursor_++];
    return true;
  }

  void Close() override { child_->Close(); }

 private:
  IteratorPtr child_;
  std::vector<std::pair<std::string, bool>> key_names_;
  size_t limit_;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
};

// ---- Set operations ----------------------------------------------------

class SetOpIter : public Iterator {
 public:
  SetOpIter(IteratorPtr left, IteratorPtr right, core::SetOpKind kind)
      : left_(std::move(left)), right_(std::move(right)), kind_(kind) {}

  Status Start() override {
    RAPID_RETURN_NOT_OK(left_->Start());
    RAPID_RETURN_NOT_OK(right_->Start());
    schema_ = left_->schema();
    if (left_->schema().size() != right_->schema().size()) {
      return Status::InvalidArgument("set operation inputs must align");
    }
    std::set<Row> rset;
    Row row;
    for (;;) {
      RAPID_ASSIGN_OR_RETURN(bool ok, right_->Fetch(&row));
      if (!ok) break;
      rset.insert(row);
    }
    std::set<Row> emitted;
    rows_.clear();
    for (;;) {
      RAPID_ASSIGN_OR_RETURN(bool ok, left_->Fetch(&row));
      if (!ok) break;
      const bool in_right = rset.count(row) != 0;
      const bool keep = kind_ == core::SetOpKind::kUnion ||
                        (kind_ == core::SetOpKind::kIntersect && in_right) ||
                        (kind_ == core::SetOpKind::kMinus && !in_right);
      if (keep && emitted.insert(row).second) rows_.push_back(row);
    }
    if (kind_ == core::SetOpKind::kUnion) {
      for (const Row& r : rset) {
        if (emitted.insert(r).second) rows_.push_back(r);
      }
    }
    cursor_ = 0;
    return Status::OK();
  }

  Result<bool> Fetch(Row* row) override {
    if (cursor_ >= rows_.size()) return false;
    *row = rows_[cursor_++];
    return true;
  }

  void Close() override {
    left_->Close();
    right_->Close();
  }

 private:
  IteratorPtr left_;
  IteratorPtr right_;
  core::SetOpKind kind_;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
};

// ---- Window ------------------------------------------------------------

class WindowIter : public Iterator {
 public:
  WindowIter(IteratorPtr child, std::vector<core::LogicalWindow> windows)
      : child_(std::move(child)), windows_(std::move(windows)) {}

  Status Start() override {
    RAPID_RETURN_NOT_OK(child_->Start());

    std::vector<size_t> part_cols;
    std::vector<std::pair<size_t, bool>> order_cols;
    for (const std::string& name : windows_[0].partition_by) {
      RAPID_ASSIGN_OR_RETURN(size_t idx, child_->IndexOf(name));
      part_cols.push_back(idx);
    }
    for (const auto& [name, asc] : windows_[0].order_by) {
      RAPID_ASSIGN_OR_RETURN(size_t idx, child_->IndexOf(name));
      order_cols.emplace_back(idx, asc);
    }

    schema_ = child_->schema();
    std::vector<size_t> value_cols;
    for (const core::LogicalWindow& w : windows_) {
      ColumnMeta m;
      m.name = w.output_name;
      size_t vc = 0;
      if (!w.value_column.empty()) {
        RAPID_ASSIGN_OR_RETURN(vc, child_->IndexOf(w.value_column));
        m = child_->schema()[vc];
        m.name = w.output_name;
      }
      value_cols.push_back(vc);
      schema_.push_back(m);
    }

    rows_.clear();
    Row row;
    for (;;) {
      RAPID_ASSIGN_OR_RETURN(bool ok, child_->Fetch(&row));
      if (!ok) break;
      rows_.push_back(row);
    }
    std::stable_sort(rows_.begin(), rows_.end(),
                     [&](const Row& a, const Row& b) {
                       for (size_t c : part_cols) {
                         if (a[c] != b[c]) return a[c] < b[c];
                       }
                       for (const auto& [c, asc] : order_cols) {
                         if (a[c] != b[c]) return asc ? a[c] < b[c] : a[c] > b[c];
                       }
                       return false;
                     });

    auto same_part = [&](const Row& a, const Row& b) {
      for (size_t c : part_cols) {
        if (a[c] != b[c]) return false;
      }
      return true;
    };
    auto same_order = [&](const Row& a, const Row& b) {
      for (const auto& [c, asc] : order_cols) {
        if (a[c] != b[c]) return false;
      }
      return true;
    };

    const size_t base = child_->schema().size();
    for (auto& r : rows_) r.resize(base + windows_.size());
    size_t begin = 0;
    while (begin < rows_.size()) {
      size_t end = begin + 1;
      while (end < rows_.size() && same_part(rows_[begin], rows_[end])) ++end;
      for (size_t f = 0; f < windows_.size(); ++f) {
        const core::LogicalWindow& w = windows_[f];
        switch (w.func) {
          case core::WindowFunc::kRowNumber:
            for (size_t i = begin; i < end; ++i) {
              rows_[i][base + f] = static_cast<int64_t>(i - begin + 1);
            }
            break;
          case core::WindowFunc::kRank: {
            int64_t rank = 1;
            for (size_t i = begin; i < end; ++i) {
              if (i > begin && !same_order(rows_[i - 1], rows_[i])) {
                rank = static_cast<int64_t>(i - begin + 1);
              }
              rows_[i][base + f] = rank;
            }
            break;
          }
          case core::WindowFunc::kDenseRank: {
            int64_t rank = 1;
            for (size_t i = begin; i < end; ++i) {
              if (i > begin && !same_order(rows_[i - 1], rows_[i])) ++rank;
              rows_[i][base + f] = rank;
            }
            break;
          }
          case core::WindowFunc::kRunningSum: {
            int64_t sum = 0;
            for (size_t i = begin; i < end; ++i) {
              sum += rows_[i][value_cols[f]];
              rows_[i][base + f] = sum;
            }
            break;
          }
          case core::WindowFunc::kPartitionSum: {
            int64_t sum = 0;
            for (size_t i = begin; i < end; ++i) {
              sum += rows_[i][value_cols[f]];
            }
            for (size_t i = begin; i < end; ++i) rows_[i][base + f] = sum;
            break;
          }
        }
      }
      begin = end;
    }
    cursor_ = 0;
    return Status::OK();
  }

  Result<bool> Fetch(Row* row) override {
    if (cursor_ >= rows_.size()) return false;
    *row = rows_[cursor_++];
    return true;
  }

  void Close() override { child_->Close(); }

 private:
  IteratorPtr child_;
  std::vector<core::LogicalWindow> windows_;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
};

// Owns the ColumnSet it iterates (for overrides, the caller owns it).
class TrimIter : public Iterator {
 public:
  // Restricts the child's output to `columns`.
  TrimIter(IteratorPtr child, std::vector<std::string> columns)
      : child_(std::move(child)), columns_(std::move(columns)) {}

  Status Start() override {
    RAPID_RETURN_NOT_OK(child_->Start());
    schema_.clear();
    indices_.clear();
    for (const std::string& name : columns_) {
      RAPID_ASSIGN_OR_RETURN(size_t idx, child_->IndexOf(name));
      indices_.push_back(idx);
      schema_.push_back(child_->schema()[idx]);
    }
    return Status::OK();
  }

  Result<bool> Fetch(Row* row) override {
    Row in;
    RAPID_ASSIGN_OR_RETURN(bool ok, child_->Fetch(&in));
    if (!ok) return false;
    row->resize(indices_.size());
    for (size_t c = 0; c < indices_.size(); ++c) (*row)[c] = in[indices_[c]];
    return true;
  }

  void Close() override { child_->Close(); }

 private:
  IteratorPtr child_;
  std::vector<std::string> columns_;
  std::vector<size_t> indices_;
};

}  // namespace

Result<IteratorPtr> VolcanoExecutor::Build(const core::LogicalPtr& plan,
                                           const core::Catalog& catalog,
                                           const NodeOverrides& overrides) {
  if (plan == nullptr) {
    return Status::InvalidArgument("logical plan is null");
  }
  auto ov = overrides.find(plan.get());
  if (ov != overrides.end()) {
    return IteratorPtr(new MaterializedIter(ov->second));
  }

  using Kind = LogicalNode::Kind;
  switch (plan->kind) {
    case Kind::kScan: {
      auto it = catalog.find(plan->table);
      if (it == catalog.end()) {
        return Status::NotFound("table '" + plan->table + "' not found");
      }
      IteratorPtr scan(new ScanIter(&it->second, plan->columns,
                                    plan->predicates));
      // Trim predicate-only columns off the scan output.
      return IteratorPtr(new TrimIter(std::move(scan), plan->columns));
    }
    case Kind::kFilter: {
      RAPID_ASSIGN_OR_RETURN(IteratorPtr child,
                             Build(plan->input, catalog, overrides));
      IteratorPtr filtered(
          new FilterIter(std::move(child), plan->predicates));
      if (!plan->columns.empty()) {
        return IteratorPtr(new TrimIter(std::move(filtered), plan->columns));
      }
      return filtered;
    }
    case Kind::kProject: {
      RAPID_ASSIGN_OR_RETURN(IteratorPtr child,
                             Build(plan->input, catalog, overrides));
      return IteratorPtr(new ProjectIter(std::move(child),
                                         plan->projections));
    }
    case Kind::kJoin: {
      RAPID_ASSIGN_OR_RETURN(IteratorPtr build,
                             Build(plan->input, catalog, overrides));
      RAPID_ASSIGN_OR_RETURN(IteratorPtr probe,
                             Build(plan->right, catalog, overrides));
      return IteratorPtr(new HashJoinIter(
          std::move(build), std::move(probe), plan->left_keys,
          plan->right_keys, plan->output_columns, plan->join_type));
    }
    case Kind::kGroupBy: {
      RAPID_ASSIGN_OR_RETURN(IteratorPtr child,
                             Build(plan->input, catalog, overrides));
      return IteratorPtr(new HashAggIter(std::move(child), plan->group_keys,
                                         plan->aggregates));
    }
    case Kind::kSort: {
      RAPID_ASSIGN_OR_RETURN(IteratorPtr child,
                             Build(plan->input, catalog, overrides));
      return IteratorPtr(new SortIter(std::move(child), plan->sort_keys, 0));
    }
    case Kind::kTopK: {
      RAPID_ASSIGN_OR_RETURN(IteratorPtr child,
                             Build(plan->input, catalog, overrides));
      return IteratorPtr(
          new SortIter(std::move(child), plan->sort_keys, plan->limit));
    }
    case Kind::kSetOp: {
      RAPID_ASSIGN_OR_RETURN(IteratorPtr left,
                             Build(plan->input, catalog, overrides));
      RAPID_ASSIGN_OR_RETURN(IteratorPtr right,
                             Build(plan->right, catalog, overrides));
      return IteratorPtr(
          new SetOpIter(std::move(left), std::move(right), plan->setop));
    }
    case Kind::kWindow: {
      RAPID_ASSIGN_OR_RETURN(IteratorPtr child,
                             Build(plan->input, catalog, overrides));
      return IteratorPtr(new WindowIter(std::move(child), plan->windows));
    }
  }
  return Status::Internal("unreachable logical node kind");
}

Result<core::ColumnSet> VolcanoExecutor::Execute(
    const core::LogicalPtr& plan, const core::Catalog& catalog,
    const NodeOverrides& overrides) {
  RAPID_ASSIGN_OR_RETURN(IteratorPtr root, Build(plan, catalog, overrides));
  return DrainToColumnSet(root.get());
}

}  // namespace rapid::hostdb
