// TPC-H demo: end-to-end analytical queries through the full stack —
// host database (System X), offload planning, RAPID execution on the
// simulated DPU, and host post-processing.
//
//   $ ./tpch_demo [scale_factor] [query]
//   $ ./tpch_demo 0.02 Q3
//
// Without arguments, runs the whole evaluated query set at SF 0.01
// and prints results plus modeled DPU statistics per query.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/result_format.h"
#include "tpch/queries.h"

int main(int argc, char** argv) {
  using namespace rapid;
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.01;
  const std::string only = argc > 2 ? argv[2] : "";

  std::printf("Loading TPC-H at scale factor %.3f...\n", sf);
  hostdb::HostDatabase host;
  core::RapidEngine engine;
  auto status = tpch::LoadTpch(sf, &host, &engine);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("  lineitem: %zu rows, orders: %zu rows\n\n",
              engine.GetTable("lineitem")->num_rows(),
              engine.GetTable("orders")->num_rows());

  for (const tpch::TpchQuery& query : tpch::BuildQuerySet()) {
    if (!only.empty() && query.name != only) continue;
    auto run = tpch::RunOnRapid(engine, query);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", query.name.c_str(),
                   run.status().ToString().c_str());
      return 1;
    }
    std::printf("=== %s ===============================================\n",
                query.name.c_str());
    // Host-side decode: dictionary codes back to strings, DSB
    // mantissas to decimals, day numbers to dates (Section 3.2).
    std::printf("%s", core::FormatTable(run.value().result, 10).c_str());
    std::printf(
        "  [modeled DPU time %.3f ms | host wall %.1f ms | scanned %llu "
        "rows, joined %llu probe rows]\n\n",
        run.value().modeled_dpu_seconds * 1e3,
        run.value().wall_seconds * 1e3,
        static_cast<unsigned long long>(run.value().workload.scanned_rows),
        static_cast<unsigned long long>(
            run.value().workload.join_probe_rows));
  }
  return 0;
}
