// Host-database integration demo (Section 3).
//
// Walks through the full offload lifecycle:
//   1. CREATE + LOAD: the host is the source of truth; LOAD ships a
//      consistent snapshot to RAPID.
//   2. Full offload: the cost-based planner routes the query through
//      the RAPID placeholder operator.
//   3. DML + admissibility: an update makes queries at the new SCN
//      inadmissible; the RAPID operator falls back to System-X-only
//      execution.
//   4. Checkpointing: journal propagation restores offload.
//   5. Partial offload: a query touching an unloaded table offloads
//      only the loaded fragment.
//
//   $ ./offload_demo

#include <cstdio>

#include "core/engine.h"
#include "hostdb/database.h"

using namespace rapid;
using namespace rapid::core;

namespace {

const char* DecisionName(hostdb::OffloadDecision::Kind kind) {
  switch (kind) {
    case hostdb::OffloadDecision::Kind::kFull:
      return "FULL OFFLOAD";
    case hostdb::OffloadDecision::Kind::kPartial:
      return "PARTIAL OFFLOAD";
    case hostdb::OffloadDecision::Kind::kNone:
      return "NO OFFLOAD";
  }
  return "?";
}

void Report(const char* what, const hostdb::QueryReport& report) {
  std::printf("%s\n", what);
  std::printf("  decision: %s%s\n", DecisionName(report.decision),
              report.fell_back ? " (FELL BACK: admission denied)" : "");
  std::printf("  %s\n\n", report.Summary().c_str());
}

}  // namespace

int main() {
  hostdb::HostDatabase host;
  RapidEngine engine;

  // 1. Create a table in the host and LOAD it into RAPID.
  std::vector<storage::ColumnSpec> specs = {
      {"id", storage::ColumnKind::kInt64},
      {"amount", storage::ColumnKind::kDecimal}};
  std::vector<storage::ColumnData> data(2);
  for (int i = 0; i < 100000; ++i) {
    data[0].ints.push_back(i);
    data[1].decimals.push_back(static_cast<double>(i % 1000) / 4.0);
  }
  RAPID_CHECK_OK(host.CreateTable("payments", specs, data));
  RAPID_CHECK_OK(host.LoadToRapid("payments", &engine));
  std::printf("loaded 'payments' (%zu rows) into RAPID at SCN %llu\n\n",
              engine.GetTable("payments")->num_rows(),
              static_cast<unsigned long long>(
                  engine.GetTable("payments")->scn()));

  auto query = LogicalNode::GroupBy(
      LogicalNode::Scan("payments", {"amount"},
                        {Predicate::CmpConst(
                            "amount", primitives::CmpOp::kGt,
                            100 * 100 /* 100.00 at scale 2 */)}),
      {}, {{"total", AggFunc::kSum, Expr::Col("amount"), {}},
           {"n", AggFunc::kCount, nullptr, {}}});

  // 2. Full offload.
  auto r1 = host.ExecuteQuery(query, &engine);
  RAPID_CHECK(r1.ok());
  Report("SELECT sum(amount), count(*) WHERE amount > 100:", r1.value());

  // 3. DML creates a pending journal entry -> admission denied.
  RAPID_CHECK_OK(host.Update(
      "payments", {storage::RowChange{5, {5, 999999 /* 9999.99 */}}}));
  std::printf("applied UPDATE at SCN %llu (journal pending: %zu)\n\n",
              static_cast<unsigned long long>(host.journal().current_scn()),
              host.journal().PendingCount("payments"));
  auto r2 = host.ExecuteQuery(query, &engine);
  RAPID_CHECK(r2.ok());
  Report("same query, with unpropagated changes:", r2.value());

  // 4. Checkpointing propagates the journal; offload resumes.
  RAPID_CHECK_OK(host.Checkpoint(&engine));
  std::printf("checkpointed journal -> RAPID (pending: %zu)\n\n",
              host.journal().PendingCount("payments"));
  auto r3 = host.ExecuteQuery(query, &engine);
  RAPID_CHECK(r3.ok());
  Report("same query, after checkpoint:", r3.value());

  // 5. Partial offload: join against a table RAPID never loaded.
  std::vector<storage::ColumnSpec> tag_specs = {
      {"tag_id", storage::ColumnKind::kInt64},
      {"tag", storage::ColumnKind::kString}};
  std::vector<storage::ColumnData> tag_data(2);
  for (int i = 0; i < 1000; ++i) {
    tag_data[0].ints.push_back(i);
    tag_data[1].strings.push_back(i % 2 ? "odd" : "even");
  }
  RAPID_CHECK_OK(host.CreateTable("tags", tag_specs, tag_data));
  // (no LoadToRapid for 'tags')

  auto join = LogicalNode::Join(
      LogicalNode::Scan("payments", {"id", "amount"},
                        {Predicate::CmpConst("id", primitives::CmpOp::kLt,
                                             1000)}),
      LogicalNode::Scan("tags", {"tag_id", "tag"}), {"id"}, {"tag_id"},
      {"amount", "tag"});
  auto r4 = host.ExecuteQuery(join, &engine);
  RAPID_CHECK(r4.ok());
  Report("join with unloaded 'tags' table:", r4.value());

  return 0;
}
