// Skew-resilient join demo (Section 6.4).
//
// Joins two Zipf-skewed relations whose statistics QComp got wrong and
// shows the three resilience mechanisms engaging: graceful DMEM
// overflow for small skew, dynamic repartitioning for large skew, and
// flow-join style heavy-hitter broadcast.
//
//   $ ./skew_join [theta]

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "core/ops/join_exec.h"
#include "core/ops/partition_exec.h"
#include "dpu/dpu.h"

using namespace rapid;
using namespace rapid::core;

namespace {

ColumnSet ZipfRelation(size_t rows, double theta, uint64_t seed) {
  std::vector<ColumnMeta> metas(2);
  metas[0].name = "key";
  metas[1].name = "payload";
  ColumnSet set(metas);
  ZipfGenerator zipf(1 << 13, theta, seed);
  for (size_t i = 0; i < rows; ++i) {
    set.column(0).push_back(static_cast<int64_t>(zipf.Sample()));
    set.column(1).push_back(static_cast<int64_t>(i));
  }
  return set;
}

}  // namespace

int main(int argc, char** argv) {
  const double theta = argc > 1 ? std::atof(argv[1]) : 0.9;
  std::printf("Zipf theta = %.2f (0 = uniform; ~1 = heavily skewed)\n\n",
              theta);

  dpu::Dpu dpu;
  const ColumnSet build = ZipfRelation(40'000, theta, 11);
  const ColumnSet probe = ZipfRelation(80'000, theta, 13);

  // Partition both sides 32 ways on the join key.
  PartitionScheme scheme;
  scheme.rounds.push_back(PartitionRound{32, 32});
  auto bp = PartitionExec::Execute(dpu, build, {0}, scheme, 1024);
  auto pp = PartitionExec::Execute(dpu, probe, {0}, scheme, 1024);
  if (!bp.ok() || !pp.ok()) {
    std::fprintf(stderr, "partitioning failed\n");
    return 1;
  }

  // Show the skew: partition sizes vs the uniform estimate.
  size_t max_part = 0;
  for (const auto& p : bp.value().partitions) {
    max_part = std::max(max_part, p.num_rows());
  }
  std::printf("build partitions: expected ~%zu rows each, largest is %zu\n\n",
              build.num_rows() / 32, max_part);

  JoinSpec spec;
  spec.build_keys = {0};
  spec.probe_keys = {0};
  spec.outputs = {{true, 1}, {false, 1}};
  spec.est_rows_per_partition = build.num_rows() / 32;
  spec.dmem_capacity_rows = 2 * spec.est_rows_per_partition;
  spec.large_skew_factor = 2.0;
  spec.heavy_hitter_threshold = 400;

  dpu.ResetCores();
  JoinStats stats;
  auto result = JoinExec::Execute(dpu, bp.value(), pp.value(), spec, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("join produced %zu result rows\n", result.value().num_rows());
  std::printf("modeled DPU time: %.3f ms\n\n",
              dpu.ModeledPhaseSeconds() * 1e3);
  std::printf("resilience mechanisms engaged:\n");
  std::printf("  DMEM-overflowed kernels:     %llu (small skew)\n",
              static_cast<unsigned long long>(stats.overflowed_partitions));
  std::printf("  dynamically repartitioned:   %llu (large skew)\n",
              static_cast<unsigned long long>(
                  stats.repartitioned_partitions));
  std::printf("  heavy-hitter keys detected:  %llu (flow-join)\n",
              static_cast<unsigned long long>(stats.heavy_hitter_keys));
  std::printf("  heavy-hitter matches:        %llu\n",
              static_cast<unsigned long long>(stats.heavy_hitter_matches));
  std::printf("  DRAM overflow chain steps:   %llu\n",
              static_cast<unsigned long long>(stats.overflow_steps));
  return 0;
}
