// Quickstart: load a table into RAPID, run a filtered aggregation and
// inspect modeled DPU execution statistics.
//
//   $ ./quickstart
//
// Demonstrates the core public API: storage::LoadTable ->
// RapidEngine::Load -> LogicalNode builders -> RapidEngine::Execute.

#include <cstdio>

#include "core/engine.h"
#include "storage/loader.h"

using rapid::core::AggFunc;
using rapid::core::Expr;
using rapid::core::LogicalNode;
using rapid::core::Predicate;
using rapid::primitives::CmpOp;

int main() {
  // 1. Stage some columnar data: a tiny sales table.
  //    sale_id | region_id | amount (decimal) | quantity
  const size_t n = 100000;
  std::vector<rapid::storage::ColumnSpec> specs = {
      {"sale_id", rapid::storage::ColumnKind::kInt64},
      {"region_id", rapid::storage::ColumnKind::kInt32},
      {"amount", rapid::storage::ColumnKind::kDecimal},
      {"quantity", rapid::storage::ColumnKind::kInt32},
  };
  std::vector<rapid::storage::ColumnData> data(4);
  for (size_t i = 0; i < n; ++i) {
    data[0].ints.push_back(static_cast<int64_t>(i));
    data[1].ints.push_back(static_cast<int64_t>(i % 8));
    data[2].decimals.push_back(static_cast<double>((i * 37) % 100000) / 100.0);
    data[3].ints.push_back(static_cast<int64_t>(1 + i % 50));
  }

  // 2. Load into the engine (encodes decimals as DSB, lays the table
  //    out as partitions -> chunks -> 16 KiB vectors).
  auto table = rapid::storage::LoadTable("sales", specs, data);
  if (!table.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  rapid::core::RapidEngine engine;
  engine.Load(std::move(table).value());

  // 3. SELECT region_id, SUM(amount * quantity), COUNT(*)
  //    FROM sales WHERE quantity >= 10 GROUP BY region_id
  //    ORDER BY region_id;
  auto scan = LogicalNode::Scan(
      "sales", {"region_id", "amount", "quantity"},
      {Predicate::CmpConst("quantity", CmpOp::kGe, 10)});
  auto grouped = LogicalNode::GroupBy(
      scan, {{"region_id", Expr::Col("region_id")}},
      {{"total", AggFunc::kSum,
        Expr::Mul(Expr::Col("amount"), Expr::Col("quantity")),
        {}},
       {"sales", AggFunc::kCount, nullptr, {}}});
  auto plan = LogicalNode::Sort(grouped, {{"region_id", true}});

  auto result = engine.Execute(plan);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Print results (decimal columns decode through their DSB scale).
  const auto& rows = result.value().rows;
  std::printf("region_id |       total | sales\n");
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    std::printf("%9lld | %11.2f | %5lld\n",
                static_cast<long long>(rows.Value(r, 0)), rows.Decimal(r, 1),
                static_cast<long long>(rows.Value(r, 2)));
  }

  // 5. Execution statistics: the modeled DPU time and the physical
  //    plan QComp produced.
  const auto& stats = result.value().stats;
  std::printf("\nphysical plan:\n%s", result.value().plan_text.c_str());
  std::printf("modeled DPU time: %.3f ms (at 800 MHz, 32 dpCores)\n",
              stats.modeled_seconds * 1e3);
  std::printf("host wall time:   %.3f ms\n", stats.wall_seconds * 1e3);

  // 6. EXPLAIN ANALYZE: the physical plan tree again, but with
  //    per-node actuals (rows out, modeled time, cycle split).
  auto explain = engine.ExplainAnalyze(plan);
  if (explain.ok()) {
    std::printf("\n%s", explain.value().c_str());
  }
  return 0;
}
